// Shared setup for the experiment benches (E1..E12): scheme construction
// over a simulated cloud, table printing, and the standard small/medium
// dataset shapes. Every bench prints the rows/series its paper
// table/figure would contain.
#pragma once

#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/kvstore.h"
#include "cloud/cost_meter.h"
#include "cloud/object_store.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

// Injected by bench/CMakeLists.txt (git rev-parse); "unknown" outside git.
#ifndef ROCKSMASH_GIT_SHA
#define ROCKSMASH_GIT_SHA "unknown"
#endif

namespace rocksmash::bench {

// Benches abort on setup/settle failures instead of measuring a half-built
// store: a silent flush failure would make every subsequent number a lie.
inline void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

// Process-wide Statistics shared by every rig a bench opens, so each
// BENCH_<name>.json can embed one ticker snapshot covering the whole run.
inline const std::shared_ptr<Statistics>& BenchStatistics() {
  static const std::shared_ptr<Statistics> stats = CreateDBStatistics();
  return stats;
}

// Machine-readable bench output: next to its printed table, every bench
// writes BENCH_<name>.json in the working directory so the perf trajectory
// is trackable across commits. One row per printed table row; metrics are
// flat key -> number.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  ~JsonReport() { Write(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  // Starts a row; subsequent Metric() calls attach to it.
  void Row(const std::string& label) { rows_.push_back({label, {}}); }

  void Metric(const std::string& key, double value) {
    if (rows_.empty()) Row("default");
    rows_.back().metrics.emplace_back(key, value);
  }

  // Row + the standard driver metrics (rows done, ops/s, tail latency).
  void AddResult(const std::string& label, const DriverResult& r) {
    Row(label);
    Metric("ops", static_cast<double>(r.operations));
    Metric("ops_per_sec", r.throughput_ops_sec);
    Metric("p50_us", r.latency_us.Percentile(50));
    Metric("p99_us", r.latency_us.Percentile(99));
  }

  void Write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    char timestamp[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
      std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ",
                    &tm_utc);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n"
                 "  \"timestamp\": \"%s\",\n  \"rows\": [\n",
                 name_.c_str(), ROCKSMASH_GIT_SHA, timestamp);
    for (size_t i = 0; i < rows_.size(); i++) {
      std::fprintf(f, "    {\"label\": \"%s\"", rows_[i].label.c_str());
      for (const auto& [key, value] : rows_[i].metrics) {
        std::fprintf(f, ", \"%s\": %.10g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    // End-of-run snapshot of the process-wide histogram set (non-empty
    // only): percentile tails next to the throughput rows, so a p99
    // regression is visible in the same file as the ops/s it explains.
    std::fprintf(f, "  ],\n  \"histograms\": {");
    bool first_h = true;
    for (uint32_t h = 0; h < HISTOGRAM_ENUM_MAX; h++) {
      const Histogram snap = BenchStatistics()->GetHistogramSnapshot(h);
      if (snap.Count() == 0) continue;
      std::fprintf(f,
                   "%s\n    \"%s\": {\"count\": %llu, \"p50\": %.10g, "
                   "\"p95\": %.10g, \"p99\": %.10g, \"p999\": %.10g}",
                   first_h ? "" : ",", HistogramName(h),
                   static_cast<unsigned long long>(snap.Count()),
                   snap.Percentile(50), snap.Percentile(95),
                   snap.Percentile(99), snap.Percentile(99.9));
      first_h = false;
    }
    // End-of-run snapshot of the process-wide ticker set (non-zero only):
    // ties the throughput rows to what the store actually did (cache hits,
    // cloud GETs, compaction bytes, ...).
    std::fprintf(f, "\n  },\n  \"tickers\": {");
    bool first = true;
    for (uint32_t t = 0; t < TICKER_ENUM_MAX; t++) {
      const uint64_t v = BenchStatistics()->GetTickerCount(t);
      if (v == 0) continue;
      std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",", TickerName(t),
                   static_cast<unsigned long long>(v));
      first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    if (std::fclose(f) != 0) {
      std::fprintf(stderr, "short write: %s\n", path.c_str());
      return;
    }
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct RowData {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  bool written_ = false;
  std::vector<RowData> rows_;
};

struct Rig {
  std::string workdir;
  std::unique_ptr<ObjectStore> cloud;
  std::unique_ptr<KVStore> store;
  SchemeOptions options;
};

// Standard experiment scale: ~45 MiB dataset, 1 MiB SSTs, 2 MiB RAM cache,
// 8 MiB local budget (about 18% of the dataset), shallow levels local.
inline SchemeOptions DefaultSchemeOptions() {
  SchemeOptions o;
  o.write_buffer_size = 1 << 20;
  o.max_file_size = 1 << 20;
  o.block_cache_bytes = 2 << 20;
  o.local_cache_bytes = 8 << 20;
  o.max_bytes_for_level_base = 4 << 20;
  o.cloud_level_start = 2;
  // Bound table-reader fd pinning to the local budget (see kvstore.h).
  o.max_open_files = 8;
  return o;
}

inline CloudLatencyModel DefaultCloudModel() {
  CloudLatencyModel m;  // Defaults approximate same-region S3 / LAN MinIO.
  return m;
}

// Opens scheme `kind` under workdir (fresh) with its own bucket.
inline Rig OpenRig(const std::string& workdir, SchemeKind kind,
                   SchemeOptions base = DefaultSchemeOptions(),
                   CloudLatencyModel model = DefaultCloudModel()) {
  Rig rig;
  rig.workdir = workdir + "/" + SchemeName(kind);
  std::filesystem::remove_all(rig.workdir);
  rig.cloud = NewSimObjectStore(rig.workdir + "/bucket",
                                SystemClock::Default(), model);
  rig.options = base;
  rig.options.kind = kind;
  rig.options.local_dir = rig.workdir + "/db";
  rig.options.cloud =
      kind == SchemeKind::kLocalOnly ? nullptr : rig.cloud.get();
  // Every bench rig feeds the shared ticker set embedded in its JSON report.
  rig.options.statistics = BenchStatistics().get();
  Status s = OpenKVStore(rig.options, &rig.store);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", SchemeName(kind),
                 s.ToString().c_str());
    std::abort();
  }
  return rig;
}

inline void LoadAndSettle(Rig& rig, const DriverSpec& spec) {
  DriverResult fill = FillRandom(rig.store.get(), spec);
  if (fill.errors > 0) {
    std::fprintf(stderr, "load errors: %llu\n",
                 (unsigned long long)fill.errors);
    std::abort();
  }
  CheckOk(rig.store->FlushMemTable(), "settle flush");
  rig.store->WaitForCompaction();
}

// Warm caches with a fraction of the read workload.
inline void Warm(Rig& rig, DriverSpec spec, uint64_t ops) {
  spec.num_ops = ops;
  ReadRandom(rig.store.get(), spec);
}

inline const SchemeKind kAllSchemes[] = {
    SchemeKind::kLocalOnly, SchemeKind::kCloudOnly,
    SchemeKind::kCloudSstCache, SchemeKind::kRocksMash};

// Parses "--small" style scaling flags shared by the benches.
struct Scale {
  uint64_t num_keys = 100000;
  uint64_t num_ops = 10000;
  size_t value_size = 400;
  // --value-dist=fixed|uniform|zipfian-large: per-key value sizes anchored
  // at value_size (see ValueSizeFor), for key-value-separation experiments.
  ValueSizeDistribution value_dist = ValueSizeDistribution::kFixed;
  bool smoke = false;  // CI bitrot check: tiny data, seconds of runtime.
};

inline Scale ParseScale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--small") == 0) {
      s.num_keys = 20000;
      s.num_ops = 4000;
    } else if (std::strcmp(argv[i], "--large") == 0) {
      s.num_keys = 400000;
      s.num_ops = 40000;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      s.num_keys = 2000;
      s.num_ops = 500;
      s.value_size = 100;
      s.smoke = true;
    } else if (std::strncmp(argv[i], "--value-dist=", 13) == 0) {
      if (!ParseValueSizeDistribution(argv[i] + 13, &s.value_dist)) {
        std::fprintf(stderr,
                     "unknown --value-dist '%s' "
                     "(want fixed|uniform|zipfian-large)\n",
                     argv[i] + 13);
        std::abort();
      }
    }
  }
  return s;
}

}  // namespace rocksmash::bench
