// Shared setup for the experiment benches (E1..E12): scheme construction
// over a simulated cloud, table printing, and the standard small/medium
// dataset shapes. Every bench prints the rows/series its paper
// table/figure would contain.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "baselines/kvstore.h"
#include "cloud/cost_meter.h"
#include "cloud/object_store.h"
#include "util/clock.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace rocksmash::bench {

struct Rig {
  std::string workdir;
  std::unique_ptr<ObjectStore> cloud;
  std::unique_ptr<KVStore> store;
  SchemeOptions options;
};

// Standard experiment scale: ~45 MiB dataset, 1 MiB SSTs, 2 MiB RAM cache,
// 8 MiB local budget (about 18% of the dataset), shallow levels local.
inline SchemeOptions DefaultSchemeOptions() {
  SchemeOptions o;
  o.write_buffer_size = 1 << 20;
  o.max_file_size = 1 << 20;
  o.block_cache_bytes = 2 << 20;
  o.local_cache_bytes = 8 << 20;
  o.max_bytes_for_level_base = 4 << 20;
  o.cloud_level_start = 2;
  // Bound table-reader fd pinning to the local budget (see kvstore.h).
  o.max_open_files = 8;
  return o;
}

inline CloudLatencyModel DefaultCloudModel() {
  CloudLatencyModel m;  // Defaults approximate same-region S3 / LAN MinIO.
  return m;
}

// Opens scheme `kind` under workdir (fresh) with its own bucket.
inline Rig OpenRig(const std::string& workdir, SchemeKind kind,
                   SchemeOptions base = DefaultSchemeOptions(),
                   CloudLatencyModel model = DefaultCloudModel()) {
  Rig rig;
  rig.workdir = workdir + "/" + SchemeName(kind);
  std::filesystem::remove_all(rig.workdir);
  rig.cloud = NewSimObjectStore(rig.workdir + "/bucket",
                                SystemClock::Default(), model);
  rig.options = base;
  rig.options.kind = kind;
  rig.options.local_dir = rig.workdir + "/db";
  rig.options.cloud =
      kind == SchemeKind::kLocalOnly ? nullptr : rig.cloud.get();
  Status s = OpenKVStore(rig.options, &rig.store);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", SchemeName(kind),
                 s.ToString().c_str());
    std::abort();
  }
  return rig;
}

inline void LoadAndSettle(Rig& rig, const DriverSpec& spec) {
  DriverResult fill = FillRandom(rig.store.get(), spec);
  if (fill.errors > 0) {
    std::fprintf(stderr, "load errors: %llu\n",
                 (unsigned long long)fill.errors);
    std::abort();
  }
  rig.store->FlushMemTable();
  rig.store->WaitForCompaction();
}

// Warm caches with a fraction of the read workload.
inline void Warm(Rig& rig, DriverSpec spec, uint64_t ops) {
  spec.num_ops = ops;
  ReadRandom(rig.store.get(), spec);
}

inline const SchemeKind kAllSchemes[] = {
    SchemeKind::kLocalOnly, SchemeKind::kCloudOnly,
    SchemeKind::kCloudSstCache, SchemeKind::kRocksMash};

// Parses "--small" style scaling flags shared by the benches.
struct Scale {
  uint64_t num_keys = 100000;
  uint64_t num_ops = 10000;
  size_t value_size = 400;
};

inline Scale ParseScale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--small") == 0) {
      s.num_keys = 20000;
      s.num_ops = 4000;
    } else if (std::strcmp(argv[i], "--large") == 0) {
      s.num_keys = 400000;
      s.num_ops = 40000;
    }
  }
  return s;
}

}  // namespace rocksmash::bench
