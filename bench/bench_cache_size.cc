// E6 — Sensitivity to local cache budget: hit ratio and read throughput as
// the local byte budget sweeps from ~4% to ~45% of the dataset, RocksMash
// (block-granular persistent cache) vs CloudSstCache (file-granular). This
// is the figure where the file-vs-block caching gap opens and closes.
//
//   ./bench_cache_size [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_cache_size";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("cache_size");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops;
  spec.value_size = scale.value_size;
  const double dataset_mib =
      spec.num_keys * (spec.value_size + 24) / 1048576.0;

  std::printf("E6 — read throughput vs local cache budget "
              "(dataset ~%.0f MiB, zipfian reads)\n\n",
              dataset_mib);
  std::printf("%-12s %20s %20s %14s\n", "budget", "RocksMash ops/s",
              "CloudSstCache ops/s", "mash hit%%");

  for (uint64_t budget_mib : {2ull, 4ull, 8ull, 16ull, 20ull}) {
    double mash_ops = 0, sota_ops = 0, hit_pct = 0;
    for (SchemeKind kind :
         {SchemeKind::kRocksMash, SchemeKind::kCloudSstCache}) {
      SchemeOptions base = DefaultSchemeOptions();
      base.local_cache_bytes = budget_mib << 20;
      // Keep fd pinning proportional to the budget.
      base.max_open_files =
          std::max<int>(4, static_cast<int>(budget_mib));
      Rig rig = OpenRig(workdir, kind, base);
      LoadAndSettle(rig, spec);
      Warm(rig, spec, spec.num_ops / 2);

      DriverResult r = ReadRandom(rig.store.get(), spec);
      auto stats = rig.store->Stats();
      report.AddResult(std::to_string(budget_mib) + "MiB/" + SchemeName(kind),
                       r);
      if (kind == SchemeKind::kRocksMash) {
        mash_ops = r.throughput_ops_sec;
        const uint64_t lookups =
            stats.persistent_cache.hits + stats.persistent_cache.misses;
        hit_pct = lookups > 0
                      ? 100.0 * stats.persistent_cache.hits / lookups
                      : 0;
      } else {
        sota_ops = r.throughput_ops_sec;
      }
    }
    std::printf("%9lluMiB %20.0f %20.0f %13.1f%%\n",
                (unsigned long long)budget_mib, mash_ops, sota_ops, hit_pct);
    std::fflush(stdout);
  }

  std::printf("\nShape check: at small budgets block-granular caching wins "
              "big (hot blocks of\nevery SST fit; whole hot files do not); "
              "as the budget approaches the dataset\nsize the schemes "
              "converge.\n");
  return 0;
}
