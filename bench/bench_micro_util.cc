// Microbenchmarks for the util substrate: coding, crc32c, hashing, LRU
// cache, histogram. Validates that the substrates are not the bottleneck in
// the experiment benches.
#include <benchmark/benchmark.h>

#include "util/cache.h"
#include "util/coding.h"
#include "util/compression.h"
#include "util/crc32c.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"

namespace rocksmash {
namespace {

void BM_EncodeVarint64(benchmark::State& state) {
  Random64 rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> (rng.Next() % 64);
  char buf[10];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeVarint64(buf, values[i++ & 1023]));
  }
}
BENCHMARK(BM_EncodeVarint64);

void BM_DecodeVarint64(benchmark::State& state) {
  Random64 rng(2);
  std::string data;
  std::vector<size_t> offsets;
  for (int i = 0; i < 1024; i++) {
    offsets.push_back(data.size());
    PutVarint64(&data, rng.Next() >> (rng.Next() % 64));
  }
  size_t i = 0;
  for (auto _ : state) {
    uint64_t v;
    const char* p = data.data() + offsets[i++ & 1023];
    benchmark::DoNotOptimize(GetVarint64Ptr(p, data.data() + data.size(), &v));
  }
}
BENCHMARK(BM_DecodeVarint64);

void BM_Crc32c(benchmark::State& state) {
  const size_t n = state.range(0);
  std::string data(n, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), n));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Hash64(benchmark::State& state) {
  const size_t n = state.range(0);
  std::string data(n, 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(data.data(), n, 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Hash64)->Arg(16)->Arg(64)->Arg(1024);

void BM_LRUCacheLookupHit(benchmark::State& state) {
  auto cache = NewLRUCache(1 << 20);
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; i++) {
    keys.push_back("key" + std::to_string(i));
    cache->Release(cache->Insert(keys.back(), nullptr, 16,
                                 [](const Slice&, void*) {}));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto* h = cache->Lookup(keys[i++ & 1023]);
    if (h != nullptr) cache->Release(h);
  }
}
BENCHMARK(BM_LRUCacheLookupHit);

void BM_LzCompress(benchmark::State& state) {
  // Structured text: the realistic SSTable-block case.
  std::string input;
  while (input.size() < static_cast<size_t>(state.range(0))) {
    input += "user" + std::to_string(input.size()) +
             ":{profile-data,location=somewhere,flags=0} ";
  }
  input.resize(state.range(0));
  std::string out;
  for (auto _ : state) {
    lz::Compress(input, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK(BM_LzCompress)->Arg(4096)->Arg(65536);

void BM_LzUncompress(benchmark::State& state) {
  std::string input;
  while (input.size() < static_cast<size_t>(state.range(0))) {
    input += "user" + std::to_string(input.size()) +
             ":{profile-data,location=somewhere,flags=0} ";
  }
  input.resize(state.range(0));
  std::string compressed;
  lz::Compress(input, &compressed);
  std::string out;
  for (auto _ : state) {
    lz::Uncompress(compressed, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK(BM_LzUncompress)->Arg(4096)->Arg(65536);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  Random64 rng(3);
  for (auto _ : state) {
    h.Add(static_cast<double>(rng.Uniform(1000000)));
  }
}
BENCHMARK(BM_HistogramAdd);

}  // namespace
}  // namespace rocksmash
