// E2 — Headline comparison: YCSB A-F throughput for RocksMash vs the three
// baselines. The paper's claim: up to ~1.7x over the state-of-the-art
// cloud-backed scheme; larger gaps appear here because the block-vs-file
// caching pathology is fully exposed at this local-budget fraction (see
// bench_cache_size for the sweep where the gap narrows).
//
//   ./bench_ycsb [--small|--large] [--value-dist=fixed|uniform|zipfian-large]
//                [workloads, default ABCDEF]
#include <cstdio>
#include <cstring>
#include <string>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_ycsb";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("ycsb");
  std::string workloads = "ABCDEF";
  for (int i = 1; i < argc; i++) {
    if (argv[i][0] != '-') workloads = argv[i];
  }

  YcsbSpec base;
  base.record_count = scale.num_keys;
  base.operation_count = scale.num_ops;
  base.value_size = scale.value_size;
  base.value_size_distribution = scale.value_dist;

  std::printf("E2 — YCSB throughput (ops/sec), %llu records x %zu B (%s), "
              "%llu ops per workload\n\n",
              (unsigned long long)base.record_count, base.value_size,
              ValueSizeDistributionName(base.value_size_distribution),
              (unsigned long long)base.operation_count);
  std::printf("%-10s", "workload");
  for (SchemeKind kind : kAllSchemes) {
    std::printf(" %14s", SchemeName(kind));
  }
  std::printf(" %12s\n", "mash/sota");

  for (char w : workloads) {
    if (w < 'A' || w > 'F') continue;
    YcsbSpec spec = YcsbWorkload(w, base);
    double sota = 0, mash = 0;
    std::printf("%-10c", w);
    for (SchemeKind kind : kAllSchemes) {
      Rig rig = OpenRig(workdir, kind);
      if (!YcsbLoad(rig.store.get(), spec).ok()) return 1;
      bench::CheckOk(rig.store->FlushMemTable(), "load flush");
      rig.store->WaitForCompaction();
      YcsbSpec warm = spec;
      warm.operation_count = spec.operation_count / 4;
      YcsbRun(rig.store.get(), warm);

      YcsbResult result = YcsbRun(rig.store.get(), spec);
      std::printf(" %14.0f", result.throughput_ops_sec);
      std::fflush(stdout);
      report.Row(std::string(1, w) + "/" + SchemeName(kind));
      report.Metric("ops", static_cast<double>(spec.operation_count));
      report.Metric("ops_per_sec", result.throughput_ops_sec);
      report.Metric("read_p99_us", result.read_latency_us.Percentile(99));
      if (kind == SchemeKind::kCloudSstCache) sota = result.throughput_ops_sec;
      if (kind == SchemeKind::kRocksMash) mash = result.throughput_ops_sec;
    }
    std::printf(" %11.2fx\n", sota > 0 ? mash / sota : 0.0);
  }

  std::printf("\nShape check: RocksMash >= CloudSstCache >= CloudOnly on "
              "read-heavy zipfian\nworkloads (B, C, D); LocalOnly is the "
              "ceiling.\n");

  // Workload E ablation: the scan-heavy workload with streaming readahead
  // disabled (the pre-streaming scan path) vs the default pipeline, on the
  // cloud-backed scheme whose scans actually pay cloud latency.
  if (workloads.find('E') != std::string::npos) {
    std::printf("\nE ablation — RocksMash scans, streaming readahead off "
                "vs on\n");
    YcsbSpec spec = YcsbWorkload('E', base);
    double off = 0, on = 0;
    for (int variant = 0; variant < 2; variant++) {
      Rig rig = OpenRig(workdir + "/e_ablation", SchemeKind::kRocksMash);
      if (!YcsbLoad(rig.store.get(), spec).ok()) return 1;
      bench::CheckOk(rig.store->FlushMemTable(), "load flush");
      rig.store->WaitForCompaction();
      YcsbSpec run = spec;
      run.scan_readahead_bytes = variant == 0 ? 0 : 1 << 20;
      YcsbResult result = YcsbRun(rig.store.get(), run);
      (variant == 0 ? off : on) = result.throughput_ops_sec;
      std::printf("  readahead %-4s %10.0f ops/sec\n",
                  variant == 0 ? "off" : "on", result.throughput_ops_sec);
      report.Row(std::string("E/RocksMash/readahead_") +
                 (variant == 0 ? "off" : "on"));
      report.Metric("ops_per_sec", result.throughput_ops_sec);
      report.Metric("scan_p99_us", result.scan_latency_us.Percentile(99));
    }
    if (off > 0) std::printf("  speedup: %.2fx\n", on / off);
  }
  return 0;
}
