// E13 — Async upload pipeline: fill/overwrite throughput with simulated
// cloud PUT latency, async pipeline vs. synchronous upload-at-install
// (same binary, pipeline toggled via SchemeOptions::async_uploads).
//
// The async pipeline keeps compaction off the cloud round-trip path, so
// fill throughput should be measurably higher — and reads must never block
// behind an in-flight upload (files serve from their local staging copy).
//
//   ./bench_upload_pipeline [--small|--large|--smoke]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_upload_pipeline";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("upload_pipeline");

  std::printf("E13 — upload pipeline, %llu writes x %zu B values, "
              "cloud PUT latency simulated\n\n",
              (unsigned long long)scale.num_keys, scale.value_size);
  std::printf("%-10s %12s %10s %10s %10s %10s\n", "mode", "fill_ops/s",
              "p99(us)", "read_ops/s", "uploads", "pending");

  // Exaggerate PUT latency so the upload path dominates: with the sync
  // pipeline every cloud-level install eats this on the compaction thread.
  CloudLatencyModel model = DefaultCloudModel();
  model.put_first_byte_micros = 20'000;

  double async_fill = 0, sync_fill = 0;
  for (bool async_uploads : {false, true}) {
    SchemeOptions base = DefaultSchemeOptions();
    base.async_uploads = async_uploads;
    Rig rig = OpenRig(workdir, SchemeKind::kRocksMash, base, model);

    DriverSpec spec;
    spec.num_keys = scale.num_keys;
    spec.num_ops = scale.num_ops;
    spec.value_size = scale.value_size;

    DriverResult fill = FillRandom(rig.store.get(), spec);
    // Reads race the in-flight uploads (async mode): they must be served
    // from the local staging copies without waiting on the cloud.
    DriverResult reads = ReadRandom(rig.store.get(), spec);
    bench::CheckOk(rig.store->FlushMemTable(), "drain flush");
    rig.store->WaitForCompaction();
    auto stats = rig.store->Stats();

    const char* mode = async_uploads ? "async" : "sync";
    std::printf("%-10s %12.0f %10.0f %10.0f %10llu %10llu\n", mode,
                fill.throughput_ops_sec, fill.latency_us.Percentile(99),
                reads.throughput_ops_sec,
                (unsigned long long)stats.storage.uploads,
                (unsigned long long)stats.storage.pending_uploads);
    std::fflush(stdout);

    report.AddResult(mode, fill);
    report.Metric("read_ops_per_sec", reads.throughput_ops_sec);
    report.Metric("uploads", static_cast<double>(stats.storage.uploads));
    report.Metric("pending_uploads",
                  static_cast<double>(stats.storage.pending_uploads));
    (async_uploads ? async_fill : sync_fill) = fill.throughput_ops_sec;
  }

  std::printf("\nasync/sync fill speedup: %.2fx\n",
              sync_fill > 0 ? async_fill / sync_fill : 0.0);
  std::printf("Shape check: async fill throughput exceeds sync (compaction "
              "no longer waits on\ncloud PUTs); uploads match and pending "
              "drains to 0 after WaitForCompaction.\n");
  return 0;
}
