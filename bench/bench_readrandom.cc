// E3 — Random-read latency distribution per scheme (zipfian point reads
// after a random load): the latency-percentile figure.
//
//   ./bench_readrandom [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_readrandom";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("readrandom");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops;
  spec.value_size = scale.value_size;

  std::printf("E3 — readrandom latency (us), %llu keys x %zu B, %llu zipfian "
              "reads\n\n",
              (unsigned long long)spec.num_keys, spec.value_size,
              (unsigned long long)spec.num_ops);
  std::printf("%-14s %12s %10s %10s %10s %10s %10s\n", "scheme", "ops/sec",
              "p50", "p90", "p99", "p999", "max");

  for (SchemeKind kind : kAllSchemes) {
    Rig rig = OpenRig(workdir, kind);
    LoadAndSettle(rig, spec);
    Warm(rig, spec, spec.num_ops / 4);

    DriverResult r = ReadRandom(rig.store.get(), spec);
    std::printf("%-14s %12.0f %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                rig.store->Name(), r.throughput_ops_sec,
                r.latency_us.Percentile(50), r.latency_us.Percentile(90),
                r.latency_us.Percentile(99), r.latency_us.Percentile(99.9),
                r.latency_us.Max());
    std::fflush(stdout);
    report.AddResult(rig.store->Name(), r);
  }

  std::printf("\nShape check: RocksMash p50 tracks LocalOnly (hot blocks on "
              "local media); its tail\nreflects cold-block cloud fetches, "
              "far below CloudOnly's every-read penalty.\n");
  return 0;
}
