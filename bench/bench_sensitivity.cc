// E12 — Sensitivity: RocksMash's advantage over the cloud baselines as the
// cloud round-trip latency sweeps from fast-LAN MinIO to cross-region S3.
// The crossover study: local caching matters more the slower the cloud.
//
//   ./bench_sensitivity [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_sensitivity";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("sensitivity");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops / 2;
  spec.value_size = scale.value_size;

  std::printf("E12 — throughput vs cloud first-byte latency "
              "(zipfian reads, %llu keys)\n\n",
              (unsigned long long)spec.num_keys);
  std::printf("%-12s %16s %16s %14s\n", "cloud RTT", "RocksMash ops/s",
              "CloudOnly ops/s", "advantage");

  for (uint64_t rtt_us : {200ull, 1000ull, 5000ull, 20000ull}) {
    CloudLatencyModel model = DefaultCloudModel();
    model.get_first_byte_micros = rtt_us;
    model.put_first_byte_micros = rtt_us * 2;
    model.head_micros = rtt_us;
    model.jitter_micros = rtt_us / 5;

    double mash = 0, cloud_only = 0;
    for (SchemeKind kind :
         {SchemeKind::kRocksMash, SchemeKind::kCloudOnly}) {
      Rig rig = OpenRig(workdir, kind, DefaultSchemeOptions(), model);
      LoadAndSettle(rig, spec);
      Warm(rig, spec, spec.num_ops / 4);
      DriverResult r = ReadRandom(rig.store.get(), spec);
      report.AddResult(std::to_string(rtt_us) + "us/" + SchemeName(kind), r);
      if (kind == SchemeKind::kRocksMash) {
        mash = r.throughput_ops_sec;
      } else {
        cloud_only = r.throughput_ops_sec;
      }
    }
    std::printf("%9lluus %16.0f %16.0f %13.1fx\n",
                (unsigned long long)rtt_us, mash, cloud_only,
                cloud_only > 0 ? mash / cloud_only : 0);
    std::fflush(stdout);
  }

  std::printf("\nShape check: the advantage grows with cloud latency — the "
              "slower the cloud,\nthe more each locally served block is "
              "worth.\n");
  return 0;
}
