// E7 — Metadata space-efficiency and restart warmth.
//
// Two questions the packed metadata region answers:
//   (1) How many local bytes does it take to keep ALL metadata (index +
//       filter + footer) of the cloud-resident tree servable locally?
//   (2) After a restart, how many cloud reads does metadata cost?
//
// Rows: RocksMash's packed region (persistent, complete, pinned) vs the
// no-region configuration (metadata fetched from the cloud on each cold
// table open, cached only in volatile RAM) vs keeping whole SSTs local.
//
//   ./bench_metadata [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_metadata";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("metadata");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.value_size = scale.value_size;
  DriverSpec probe = spec;
  probe.num_ops = 500;

  std::printf("E7 — metadata footprint & restart warmth "
              "(%llu keys x %zu B)\n\n",
              (unsigned long long)spec.num_keys, spec.value_size);

  // --- RocksMash with the packed metadata region ---
  uint64_t packed_bytes = 0, tree_bytes = 0, slabs = 0, cloud_files = 0;
  uint64_t mash_restart_gets = 0;
  {
    Rig rig = OpenRig(workdir, SchemeKind::kRocksMash);
    LoadAndSettle(rig, spec);
    auto stats = rig.store->Stats();
    packed_bytes = stats.persistent_cache.metadata.bytes;
    slabs = stats.persistent_cache.metadata.slabs;
    cloud_files = stats.storage.cloud_files;
    tree_bytes = stats.storage.cloud_bytes + stats.storage.local_bytes;

    // Restart (new store over the same dirs/bucket), then probe.
    rig.store.reset();
    if (!OpenKVStore(rig.options, &rig.store).ok()) return 1;
    const uint64_t gets_before = rig.cloud->Counters().gets;
    ReadRandom(rig.store.get(), probe);
    mash_restart_gets = rig.cloud->Counters().gets - gets_before;
    auto stats2 = rig.store->Stats();
    std::printf("packed region after restart: %llu metadata hits / %llu "
                "misses (still complete)\n",
                (unsigned long long)stats2.persistent_cache.metadata.hits,
                (unsigned long long)stats2.persistent_cache.metadata.misses);
  }

  // --- No packed region: metadata comes from the cloud on cold opens ---
  uint64_t nometa_restart_gets = 0;
  {
    Rig rig = OpenRig(workdir, SchemeKind::kCloudOnly);
    LoadAndSettle(rig, spec);
    rig.store.reset();
    if (!OpenKVStore(rig.options, &rig.store).ok()) return 1;
    const uint64_t gets_before = rig.cloud->Counters().gets;
    ReadRandom(rig.store.get(), probe);
    nometa_restart_gets = rig.cloud->Counters().gets - gets_before;
  }

  std::printf("\n%-34s %16s %22s\n", "configuration", "local metadata",
              "cloud GETs (500 reads,");
  std::printf("%-34s %16s %22s\n", "", "bytes", "post-restart)");
  std::printf("%-34s %13.1f KiB %22llu\n", "packed metadata region",
              packed_bytes / 1024.0,
              (unsigned long long)mash_restart_gets);
  std::printf("%-34s %13.1f KiB %22llu\n", "no region (cloud metadata)", 0.0,
              (unsigned long long)nometa_restart_gets);
  std::printf("%-34s %13.1f KiB %22s\n", "whole SSTs local",
              tree_bytes / 1024.0, "0");

  report.Row("packed_region");
  report.Metric("local_metadata_bytes", static_cast<double>(packed_bytes));
  report.Metric("restart_cloud_gets", static_cast<double>(mash_restart_gets));
  report.Row("no_region");
  report.Metric("local_metadata_bytes", 0);
  report.Metric("restart_cloud_gets",
                static_cast<double>(nometa_restart_gets));
  report.Row("whole_ssts_local");
  report.Metric("local_metadata_bytes", static_cast<double>(tree_bytes));
  report.Metric("restart_cloud_gets", 0);

  std::printf("\ncloud SSTs: %llu, metadata slabs: %llu (every cloud SST "
              "covered: %s); region is\n%.2f%% of the tree's bytes\n",
              (unsigned long long)cloud_files, (unsigned long long)slabs,
              slabs >= cloud_files ? "yes" : "NO",
              100.0 * packed_bytes / std::max<uint64_t>(tree_bytes, 1));

  std::printf("\nShape check: ~1-2%% of the tree's bytes keeps all metadata "
              "local and restart-warm;\nwithout it every cold table open "
              "spends cloud reads on footer/index/filter before\nthe first "
              "data byte arrives.\n");
  return 0;
}
