// E14 — Trace capture & replay: capture a mixed read/write workload on a
// RocksMash rig with sampling=1, then replay the trace into a fresh rig
// (same preload) at max speed and at recorded speed. The capture and the
// replay must agree op-for-op: `replay_counts_match` is the CI fidelity
// gate, and the `capture overhead` row bounds what tracing costs while on.
//
//   ./bench_replay [--small|--large|--smoke]
#include <cstdio>

#include "common.h"
#include "env/env.h"
#include "trace/replayer.h"
#include "trace/trace_tools.h"

using namespace rocksmash;
using namespace rocksmash::bench;

namespace {

// Capture and replay rigs must start from the same state for replay to
// converge to the captured store; both get the identical deterministic
// preload (same spec/seed) before the traced phase begins.
Rig OpenPreloaded(const std::string& dir, const DriverSpec& spec) {
  Rig rig = OpenRig(dir, SchemeKind::kRocksMash);
  LoadAndSettle(rig, spec);
  return rig;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_replay";
  const std::string trace_path = workdir + "/capture.trace";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("replay");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops;
  spec.value_size = scale.value_size;
  spec.distribution = Distribution::kZipfian;

  std::printf("E14 — trace capture & replay, %llu keys x %zu B, %llu mixed "
              "ops\n\n",
              (unsigned long long)spec.num_keys, spec.value_size,
              (unsigned long long)spec.num_ops);
  std::printf("%-18s %12s %10s %10s\n", "phase", "ops/sec", "p50", "p99");

  auto row = [&](const char* label, const DriverResult& r) {
    std::printf("%-18s %12.0f %10.0f %10.0f\n", label, r.throughput_ops_sec,
                r.latency_us.Percentile(50), r.latency_us.Percentile(99));
    std::fflush(stdout);
    report.AddResult(label, r);
  };

  // Baseline: the same workload untraced, on its own rig, to bound the
  // capture overhead (both rigs are warm-equivalent: same preload, same
  // read mix).
  Rig base_rig = OpenPreloaded(workdir + "/base", spec);
  DriverResult untraced = ReadWhileWriting(base_rig.store.get(), spec);
  row("untraced", untraced);

  // Capture: identical workload with a sampling=1 trace attached.
  Rig cap_rig = OpenPreloaded(workdir + "/capture", spec);
  trace::TraceOptions topts;
  topts.sampling_frequency = 1;
  CheckOk(cap_rig.store->StartTrace(topts, trace_path), "StartTrace");
  DriverResult traced = ReadWhileWriting(cap_rig.store.get(), spec);
  row("traced", traced);
  CheckOk(cap_rig.store->EndTrace(), "EndTrace");

  trace::TraceStats tstats;
  CheckOk(trace::TraceFileStats(cap_rig.options.env != nullptr
                                    ? cap_rig.options.env
                                    : Env::Default(),
                                trace_path, &tstats),
          "trace stats");
  std::printf("\ncaptured %llu records (%llu dropped), %llu threads\n",
              (unsigned long long)tstats.records_written,
              (unsigned long long)tstats.records_dropped,
              (unsigned long long)tstats.threads);

  // Replay at max speed into a fresh rig with the same preload.
  Rig replay_rig = OpenPreloaded(workdir + "/replay", spec);
  trace::ReplayOptions ropts;
  ropts.fast_forward = 0;  // Max speed.
  ropts.statistics = BenchStatistics().get();
  trace::Replayer replayer(replay_rig.store->db(), ropts);
  trace::ReplayResult rr;
  CheckOk(replayer.Replay(Env::Default(), trace_path, &rr), "replay");

  report.Row("replay.max_speed");
  report.Metric("ops", static_cast<double>(rr.ops_issued));
  report.Metric("ops_per_sec",
                rr.wall_micros > 0
                    ? 1e6 * static_cast<double>(rr.ops_issued) /
                          static_cast<double>(rr.wall_micros)
                    : 0);
  report.Metric("threads", static_cast<double>(rr.threads));
  report.Metric("errors", static_cast<double>(rr.errors));
  std::printf("replay max speed: %llu ops over %llu threads in %.1f ms "
              "(%llu errors)\n",
              (unsigned long long)rr.ops_issued,
              (unsigned long long)rr.threads, rr.wall_micros / 1000.0,
              (unsigned long long)rr.errors);

  // Fidelity gate: with sampling=1 the replay must issue exactly the op mix
  // the capture recorded, per record type. run_bench_smoke.sh asserts on
  // this metric.
  bool counts_match = true;
  for (uint32_t t = trace::kTracePut; t <= trace::kTraceIterNext; t++) {
    if (tstats.op_counts[t] != rr.op_counts[t]) {
      counts_match = false;
      std::printf("MISMATCH %s: captured %llu, replayed %llu\n",
                  trace::TraceRecordTypeName(static_cast<uint8_t>(t)),
                  (unsigned long long)tstats.op_counts[t],
                  (unsigned long long)rr.op_counts[t]);
    }
  }
  report.Row("fidelity");
  report.Metric("replay_counts_match", counts_match ? 1 : 0);
  report.Metric("captured_ops", static_cast<double>(tstats.total_records));
  report.Metric("replayed_ops", static_cast<double>(rr.ops_issued));
  std::printf("replay_counts_match: %s\n", counts_match ? "yes" : "NO");

  // Paced replay (recorded speed, 4x fast-forward on smoke so CI stays
  // quick): exercises the scheduling path and reports how far behind the
  // recorded timeline the replay ran.
  Rig paced_rig = OpenPreloaded(workdir + "/paced", spec);
  trace::ReplayOptions paced_opts;
  paced_opts.fast_forward = scale.smoke ? 4.0 : 1.0;
  paced_opts.statistics = BenchStatistics().get();
  trace::Replayer paced(paced_rig.store->db(), paced_opts);
  trace::ReplayResult pr;
  CheckOk(paced.Replay(Env::Default(), trace_path, &pr), "paced replay");
  report.Row("replay.paced");
  report.Metric("fast_forward", paced_opts.fast_forward);
  report.Metric("ops", static_cast<double>(pr.ops_issued));
  report.Metric("behind_total_us", static_cast<double>(pr.behind_total_us));
  report.Metric("behind_max_us", static_cast<double>(pr.behind_max_us));
  std::printf("replay %.0fx: %llu ops, behind total %.1f ms (max %.1f ms)\n",
              paced_opts.fast_forward, (unsigned long long)pr.ops_issued,
              pr.behind_total_us / 1000.0, pr.behind_max_us / 1000.0);

  // Chrome export sanity: the capture included backend spans; the exported
  // JSON must be non-trivial and well-formed (starts with the traceEvents
  // envelope).
  std::string chrome;
  CheckOk(trace::TraceFileToChrome(Env::Default(), trace_path, &chrome),
          "to-chrome");
  const bool chrome_ok =
      chrome.rfind("{\"traceEvents\":[", 0) == 0 && chrome.size() > 64;
  report.Row("chrome_export");
  report.Metric("valid", chrome_ok ? 1 : 0);
  report.Metric("bytes", static_cast<double>(chrome.size()));

  const double overhead_pct =
      untraced.throughput_ops_sec > 0
          ? 100.0 * (1.0 - traced.throughput_ops_sec /
                               untraced.throughput_ops_sec)
          : 0;
  report.Row("summary");
  report.Metric("capture_overhead_pct", overhead_pct);
  std::printf("\ncapture overhead vs untraced: %.1f%%\n", overhead_pct);
  std::printf("Shape check: replayed op counts equal captured counts "
              "(sampling=1); capture\noverhead stays small (per-thread "
              "buffered writer, one atomic load when off).\n");
  return !counts_match || !chrome_ok;
}
