// E9 — Scan throughput per scheme at several scan lengths (the range-query
// figure). Sequential block fetches make cloud range-GET batching and local
// caching behave differently than point reads.
//
//   ./bench_scan [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_scan";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("scan");

  std::printf("E9 — scans/sec by scan length (%llu keys x %zu B)\n\n",
              (unsigned long long)scale.num_keys, scale.value_size);
  std::printf("%-14s", "scheme");
  const int lengths[] = {10, 100, 1000};
  for (int len : lengths) std::printf(" %12d", len);
  std::printf("\n");

  for (SchemeKind kind : kAllSchemes) {
    Rig rig = OpenRig(workdir, kind);
    DriverSpec spec;
    spec.num_keys = scale.num_keys;
    spec.value_size = scale.value_size;
    LoadAndSettle(rig, spec);

    std::printf("%-14s", rig.store->Name());
    for (int len : lengths) {
      DriverSpec scan_spec = spec;
      scan_spec.scan_length = len;
      scan_spec.num_ops = std::max<uint64_t>(20, scale.num_ops / (4 * len));
      DriverResult r = ScanRandom(rig.store.get(), scan_spec);
      std::printf(" %12.0f", r.throughput_ops_sec);
      std::fflush(stdout);
      report.AddResult(std::string(rig.store->Name()) + "/len" +
                           std::to_string(len),
                       r);
    }
    std::printf("\n");
  }

  std::printf("\nShape check: scans amortize per-request cloud latency over "
              "more rows, so the\ncloud schemes close part of the gap as "
              "length grows; LocalOnly stays the ceiling.\n");
  return 0;
}
