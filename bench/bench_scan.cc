// E9 — Scan throughput per scheme at several scan lengths (the range-query
// figure), plus two scan-engine phases: cold cloud-heavy long-range scans
// with streaming readahead off vs on (the pre-PR baseline vs the async
// prefetch pipeline), and prefix-mode scans over overlapping runs showing
// filter-based run skipping.
//
//   ./bench_scan [--small|--large|--smoke]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

namespace {

// Cold cloud-heavy rig: every SST cloud-resident, no legacy sync readahead
// window, and a local cache too small to absorb the dataset — each scan
// pays real range GETs.
Rig OpenColdCloudRig(const std::string& workdir) {
  SchemeOptions o = DefaultSchemeOptions();
  o.cloud_level_start = 0;
  o.cloud_readahead_bytes = 0;
  o.block_cache_bytes = 256 * 1024;
  o.local_cache_bytes = 256 * 1024;
  return OpenRig(workdir, SchemeKind::kRocksMash, o);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_scan";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("scan");

  std::printf("E9 — scans/sec by scan length (%llu keys x %zu B)\n\n",
              (unsigned long long)scale.num_keys, scale.value_size);
  std::printf("%-14s", "scheme");
  const int lengths[] = {10, 100, 1000};
  for (int len : lengths) std::printf(" %12d", len);
  std::printf("\n");

  for (SchemeKind kind : kAllSchemes) {
    Rig rig = OpenRig(workdir, kind);
    DriverSpec spec;
    spec.num_keys = scale.num_keys;
    spec.value_size = scale.value_size;
    LoadAndSettle(rig, spec);

    std::printf("%-14s", rig.store->Name());
    for (int len : lengths) {
      DriverSpec scan_spec = spec;
      scan_spec.scan_length = len;
      scan_spec.num_ops = std::max<uint64_t>(20, scale.num_ops / (4 * len));
      DriverResult r = ScanRandom(rig.store.get(), scan_spec);
      std::printf(" %12.0f", r.throughput_ops_sec);
      std::fflush(stdout);
      report.AddResult(std::string(rig.store->Name()) + "/len" +
                           std::to_string(len),
                       r);
    }
    std::printf("\n");
  }

  std::printf("\nShape check: scans amortize per-request cloud latency over "
              "more rows, so the\ncloud schemes close part of the gap as "
              "length grows; LocalOnly stays the ceiling.\n");

  // ---- Phase 2: cold cloud-heavy long-range scans, readahead off vs on.
  // "Off" is the pre-streaming baseline (one GET per block); "on" runs the
  // async prefetch pipeline (coalesced range GETs overlapped with the
  // scan). Separate rigs keep both variants cold.
  std::printf("\nE9b — cold cloud-heavy long-range scans (%llu-row scans)\n",
              (unsigned long long)scale.num_keys);
  const uint64_t long_scans = scale.smoke ? 6 : 20;
  double ops_off = 0, ops_on = 0;
  for (int variant = 0; variant < 2; variant++) {
    Rig rig = OpenColdCloudRig(workdir + "/cold" + std::to_string(variant));
    DriverSpec spec;
    spec.num_keys = scale.num_keys;
    spec.value_size = scale.value_size;
    LoadAndSettle(rig, spec);

    DriverSpec scan_spec = spec;
    scan_spec.scan_length = static_cast<int>(scale.num_keys);
    scan_spec.num_ops = long_scans;
    scan_spec.scan_readahead_bytes = variant == 0 ? 0 : 1 << 20;
    DriverResult r = ScanRandom(rig.store.get(), scan_spec);
    (variant == 0 ? ops_off : ops_on) = r.throughput_ops_sec;
    std::printf("  readahead %-4s %10.1f scans/sec  (p99 %.0f us)\n",
                variant == 0 ? "off" : "on", r.throughput_ops_sec,
                r.latency_us.Percentile(99));
    report.AddResult(variant == 0 ? "cold_cloud/readahead_off"
                                  : "cold_cloud/readahead_on",
                     r);
  }
  if (ops_off > 0) {
    std::printf("  speedup: %.2fx\n", ops_on / ops_off);
    report.Row("cold_cloud/summary");
    report.Metric("readahead_speedup", ops_on / ops_off);
  }

  // ---- Phase 3: prefix scans over overlapping runs. Two interleaved
  // loads with a flush in between leave every prefix group present in only
  // one of two overlapping runs, so half of all prefix seeks can skip a
  // run via its filter (scan.runs.skipped).
  std::printf("\nE9c — prefix scans with filter-based run skipping\n");
  {
    SchemeOptions o = DefaultSchemeOptions();
    o.cloud_level_start = 0;
    o.cloud_readahead_bytes = 0;
    // 16-digit DriverKey: a 15-byte prefix buckets keys into groups of 10.
    o.prefix_length = 15;
    Rig rig = OpenRig(workdir + "/prefix", SchemeKind::kRocksMash, o);

    DriverSpec spec;
    spec.num_keys = scale.num_keys;
    spec.value_size = scale.value_size;
    WriteOptions wo;
    for (int pass = 0; pass < 2; pass++) {
      for (uint64_t i = 0; i < spec.num_keys; i++) {
        // Interleave groups of 10: even groups in run 0, odd in run 1.
        if (((i / 10) % 2) != static_cast<uint64_t>(pass)) continue;
        CheckOk(rig.store->Put(wo, DriverKey(spec, i), DriverValue(spec, i)),
                "prefix load");
      }
      CheckOk(rig.store->FlushMemTable(), "prefix flush");
    }

    DriverSpec scan_spec = spec;
    scan_spec.scan_length = 10;
    scan_spec.num_ops = std::max<uint64_t>(50, scale.num_ops / 10);
    scan_spec.prefix_scan = true;
    DriverResult r = ScanRandom(rig.store.get(), scan_spec);
    std::printf("  prefix scans  %10.0f scans/sec  runs skipped so far: "
                "%llu\n",
                r.throughput_ops_sec,
                (unsigned long long)BenchStatistics()->GetTickerCount(
                    SCAN_RUNS_SKIPPED));
    report.AddResult("prefix/len10", r);
  }
  return 0;
}
