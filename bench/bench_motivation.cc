// E1 — Motivation: device profile of the local tier vs the cloud tier.
// Reproduces the paper-intro-style table: latency and $ character of the
// two storage options that motivate the hybrid design.
#include <cstdio>
#include <filesystem>

#include "common.h"
#include "env/env.h"
#include "util/histogram.h"

using namespace rocksmash;

namespace {

Histogram ProfileLocal4KRead(const std::string& dir, int iters) {
  Env* env = Env::Default();
  bench::CheckOk(env->CreateDirRecursively(dir), "create profile dir");
  const std::string path = dir + "/blob";
  std::string blob(8 << 20, 'x');
  bench::CheckOk(WriteStringToFile(env, blob, path, /*sync=*/true),
                 "write profile blob");

  std::unique_ptr<RandomAccessFile> file;
  bench::CheckOk(env->NewRandomAccessFile(path, &file), "open profile blob");
  Random64 rng(1);
  Histogram h;
  std::string scratch(4096, 0);
  Slice result;
  SystemClock* clock = SystemClock::Default();
  for (int i = 0; i < iters; i++) {
    uint64_t offset = rng.Uniform((8 << 20) - 4096);
    uint64_t t0 = clock->NowNanos();
    bench::CheckOk(file->Read(offset, 4096, &result, scratch.data()),
                   "local 4K read");
    h.Add((clock->NowNanos() - t0) / 1000.0);
    RecordTick(bench::BenchStatistics().get(), LOCAL_BLOCK_READS);
  }
  return h;
}

Histogram ProfileCloud4KRead(ObjectStore* store, int iters) {
  std::string blob(8 << 20, 'x');
  bench::CheckOk(store->Put("profile/blob", blob), "put profile blob");
  Statistics* stats = bench::BenchStatistics().get();
  RecordTick(stats, CLOUD_PUT_COUNT);
  RecordTick(stats, CLOUD_PUT_BYTES, blob.size());
  Random64 rng(2);
  Histogram h;
  SystemClock* clock = SystemClock::Default();
  std::string out;
  for (int i = 0; i < iters; i++) {
    uint64_t offset = rng.Uniform((8 << 20) - 4096);
    uint64_t t0 = clock->NowNanos();
    bench::CheckOk(store->GetRange("profile/blob", offset, 4096, &out),
                   "cloud 4K read");
    const double micros = (clock->NowNanos() - t0) / 1000.0;
    h.Add(micros);
    // This bench profiles the object store directly (no KVStore), so it
    // feeds the shared ticker set by hand.
    RecordTick(stats, CLOUD_GET_COUNT);
    RecordTick(stats, CLOUD_GET_BYTES, out.size());
    RecordInHistogram(stats, CLOUD_GET_LATENCY_US, micros);
  }
  return h;
}

}  // namespace

int main() {
  const std::string workdir = "/tmp/rocksmash_bench_motivation";
  std::filesystem::remove_all(workdir);
  bench::JsonReport report("motivation");

  std::printf("E1 — Motivation: local vs cloud storage profile\n");
  std::printf("(cloud numbers come from the calibrated latency model: "
              "same-region S3 / LAN MinIO class)\n\n");

  const int kIters = 400;
  Histogram local = ProfileLocal4KRead(workdir + "/local", kIters);

  auto cloud = NewSimObjectStore(workdir + "/bucket", SystemClock::Default(),
                                 bench::DefaultCloudModel());
  Histogram remote = ProfileCloud4KRead(cloud.get(), kIters);

  std::printf("%-22s %12s %12s %12s\n", "4 KiB random read", "p50(us)",
              "p99(us)", "avg(us)");
  std::printf("%-22s %12.1f %12.1f %12.1f\n", "local tier", local.Median(),
              local.Percentile(99), local.Average());
  std::printf("%-22s %12.1f %12.1f %12.1f\n", "cloud tier", remote.Median(),
              remote.Percentile(99), remote.Average());
  std::printf("latency ratio (cloud/local, p50): %.1fx\n\n",
              remote.Median() / std::max(local.Median(), 0.1));

  for (const auto& [label, h] :
       {std::pair<const char*, const Histogram*>{"local", &local},
        {"cloud", &remote}}) {
    report.Row(label);
    report.Metric("ops", static_cast<double>(h->Count()));
    report.Metric("p50_us", h->Median());
    report.Metric("p99_us", h->Percentile(99));
    report.Metric("avg_us", h->Average());
  }

  PriceCard card;
  std::printf("%-22s %14s %16s\n", "cost", "$/GB-month", "$/1M 4K reads");
  std::printf("%-22s %14.3f %16.3f\n", "local tier",
              card.local_storage_usd_per_gb_month, 0.0);
  std::printf("%-22s %14.3f %16.3f\n", "cloud tier",
              card.cloud_storage_usd_per_gb_month,
              card.cloud_get_usd_per_1k * 1000.0);
  std::printf("capacity ratio (local/cloud $): %.1fx\n\n",
              card.local_storage_usd_per_gb_month /
                  card.cloud_storage_usd_per_gb_month);

  std::printf("Takeaway: cloud capacity is ~%.0f%% the price of local, but "
              "each out-of-cache read\npays ~%.0fx the latency plus "
              "per-request dollars — hence: hot data + metadata local,\n"
              "bulk data in the cloud.\n",
              100.0 * card.cloud_storage_usd_per_gb_month /
                  card.local_storage_usd_per_gb_month,
              remote.Median() / std::max(local.Median(), 0.1));
  std::filesystem::remove_all(workdir);
  return 0;
}
