// Microbenchmarks for the table layer: block build/seek, bloom filters,
// table iteration.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "env/env.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/bloom.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "util/random.h"

namespace rocksmash {
namespace {

// Micro benches have no error channel; a failed setup step would only make
// the numbers meaningless, so die loudly instead.
void BenchCheckOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

void BM_BlockBuild(benchmark::State& state) {
  std::vector<std::string> keys, values;
  for (int i = 0; i < 64; i++) {
    keys.push_back(Key(i));
    values.push_back(std::string(100, 'v'));
  }
  for (auto _ : state) {
    BlockBuilder builder(16);
    for (int i = 0; i < 64; i++) {
      builder.Add(keys[i], values[i]);
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
}
BENCHMARK(BM_BlockBuild);

void BM_BlockSeek(benchmark::State& state) {
  BlockBuilder builder(16);
  for (int i = 0; i < 64; i++) {
    builder.Add(Key(i), std::string(100, 'v'));
  }
  BlockContents contents;
  contents.data = builder.Finish().ToString();
  Block block(std::move(contents));
  Random64 rng(1);
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(
        block.NewIterator(BytewiseComparator::Instance()));
    it->Seek(Key(static_cast<int>(rng.Uniform(64))));
    benchmark::DoNotOptimize(it->Valid());
  }
}
BENCHMARK(BM_BlockSeek);

void BM_BloomCreate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::string> key_strings;
  std::vector<Slice> keys;
  for (int i = 0; i < n; i++) key_strings.push_back(Key(i));
  for (const auto& k : key_strings) keys.emplace_back(k);
  for (auto _ : state) {
    std::string filter;
    BloomFilterPolicy(10).CreateFilter(keys.data(), n, &filter);
    benchmark::DoNotOptimize(filter);
  }
}
BENCHMARK(BM_BloomCreate)->Arg(100)->Arg(1000);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_strings;
  std::vector<Slice> keys;
  for (int i = 0; i < 1000; i++) key_strings.push_back(Key(i));
  for (const auto& k : key_strings) keys.emplace_back(k);
  std::string filter;
  policy.CreateFilter(keys.data(), 1000, &filter);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.KeyMayMatch(key_strings[i++ % 1000], filter));
  }
}
BENCHMARK(BM_BloomQuery);

void BM_TablePointGet(benchmark::State& state) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> file;
  BenchCheckOk(env->NewWritableFile("/t", &file));
  TableOptions topt;
  topt.filter_policy = NewBloomFilterPolicy(10);
  TableBuilder builder(topt, file.get());
  const int kN = 10000;
  for (int i = 0; i < kN; i++) {
    builder.Add(Key(i), std::string(100, 'v'));
  }
  BenchCheckOk(builder.Finish());
  const uint64_t size = builder.FileSize();
  BenchCheckOk(file->Close());

  std::unique_ptr<RandomAccessFile> rfile;
  BenchCheckOk(env->NewRandomAccessFile("/t", &rfile));
  auto cache = NewLRUCache(8 << 20);
  std::unique_ptr<Table> table;
  BenchCheckOk(Table::Open(topt, std::make_unique<FileBlockSource>(
                               rfile.get()),
                           size, cache.get(), 1, &table));

  Random64 rng(7);
  for (auto _ : state) {
    int found = 0;
    auto handler = [](void* arg, const Slice&, const Slice&) {
      (*reinterpret_cast<int*>(arg))++;
    };
    BenchCheckOk(table->InternalGet(Key(static_cast<int>(rng.Uniform(kN))),
                                    &found, handler));
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_TablePointGet);

}  // namespace
}  // namespace rocksmash
