// E10 — Ablation: compaction-aware cache layout (per-SST extents, dropped
// wholesale on invalidation) vs a global log layout (log cleaning reclaims
// dead bytes). Workload: readwhilewriting, so compaction continuously
// obsoletes SSTs and invalidation cost matters.
//
//   ./bench_ablation_layout [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_layout";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("ablation_layout");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops;
  spec.value_size = scale.value_size;

  std::printf("E10 — cache layout ablation under compaction churn "
              "(readwhilewriting, %llu keys)\n\n",
              (unsigned long long)spec.num_keys);
  std::printf("%-18s %12s %10s %14s %12s %14s %12s\n", "layout", "ops/sec",
              "hit%%", "reclaim(ms)", "GC(ms)", "GC rewritten", "disk MiB");

  for (CacheLayout layout :
       {CacheLayout::kCompactionAware, CacheLayout::kGlobalLog}) {
    SchemeOptions base = DefaultSchemeOptions();
    base.kind = SchemeKind::kRocksMash;
    base.cache_layout = layout;
    Rig rig = OpenRig(workdir, SchemeKind::kRocksMash, base);
    LoadAndSettle(rig, spec);
    Warm(rig, spec, spec.num_ops / 4);

    DriverResult r = ReadWhileWriting(rig.store.get(), spec);
    rig.store->WaitForCompaction();
    auto stats = rig.store->Stats().persistent_cache;
    const uint64_t lookups = stats.hits + stats.misses;
    // Total space-reclamation cost: invalidation work plus (global-log
    // only) the log-cleaning rewrites it defers the work to.
    const double reclaim_ms =
        (stats.invalidation_micros + stats.gc_micros) / 1000.0;
    std::printf("%-18s %12.0f %9.1f%% %14.2f %12.2f %11.1fMiB %12.1f\n",
                layout == CacheLayout::kCompactionAware ? "compaction-aware"
                                                        : "global-log",
                r.throughput_ops_sec,
                lookups > 0 ? 100.0 * stats.hits / lookups : 0, reclaim_ms,
                stats.gc_micros / 1000.0,
                stats.gc_bytes_rewritten / 1048576.0,
                stats.disk_bytes / 1048576.0);
    std::fflush(stdout);
    report.AddResult(layout == CacheLayout::kCompactionAware
                         ? "compaction-aware"
                         : "global-log",
                     r);
    report.Metric("reclaim_ms", reclaim_ms);
  }

  std::printf("\nShape check: hit ratios match (same admission/eviction); "
              "the compaction-aware\nlayout invalidates in O(1) with zero GC "
              "traffic, while the global log pays\nlog-cleaning rewrites for "
              "the same churn.\n");
  return 0;
}
