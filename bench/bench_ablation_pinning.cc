// E11 — Ablation: metadata pinning and heat-based file pinning.
//   row 1: full RocksMash (packed metadata region + persistent cache)
//   row 2: no metadata region (index/filter reads go to the cloud on every
//          cold table open) — approximated by the CloudOnly storage with
//          the same RAM cache
//   row 3: heat-based whole-file pinning enabled on top of full RocksMash
//
//   ./bench_ablation_pinning [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

namespace {

void RunRow(const char* label, Rig& rig, const DriverSpec& spec,
            JsonReport& report) {
  LoadAndSettle(rig, const_cast<DriverSpec&>(spec));
  Warm(rig, spec, spec.num_ops / 4);
  const uint64_t gets_before = rig.options.cloud != nullptr
                                   ? rig.options.cloud->Counters().gets
                                   : 0;
  DriverResult r = ReadRandom(rig.store.get(), spec);
  const uint64_t gets = rig.options.cloud != nullptr
                            ? rig.options.cloud->Counters().gets - gets_before
                            : 0;
  std::printf("%-26s %12.0f %10.0f %10.0f %14.2f\n", label,
              r.throughput_ops_sec, r.latency_us.Percentile(50),
              r.latency_us.Percentile(99),
              static_cast<double>(gets) / spec.num_ops);
  std::fflush(stdout);
  report.AddResult(label, r);
  report.Metric("cloud_gets_per_read",
                static_cast<double>(gets) / spec.num_ops);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_pinning";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("ablation_pinning");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops;
  spec.value_size = scale.value_size;

  std::printf("E11 — metadata / heat pinning ablation (zipfian reads, "
              "%llu keys)\n\n",
              (unsigned long long)spec.num_keys);
  std::printf("%-26s %12s %10s %10s %14s\n", "configuration", "ops/sec",
              "p50(us)", "p99(us)", "cloudGET/read");

  {
    Rig rig = OpenRig(workdir + "/full", SchemeKind::kRocksMash);
    RunRow("rocksmash (full)", rig, spec, report);
  }
  {
    // No metadata region / no block cache on SSD: every cold block and
    // every cold table open goes to the cloud.
    Rig rig = OpenRig(workdir + "/nometa", SchemeKind::kCloudOnly);
    RunRow("no metadata/no pcache", rig, spec, report);
  }
  {
    SchemeOptions base = DefaultSchemeOptions();
    base.pin_hot_files = true;
    Rig rig = OpenRig(workdir + "/pin", SchemeKind::kRocksMash, base);
    RunRow("rocksmash + heat pinning", rig, spec, report);
  }

  std::printf("\nShape check: removing the metadata region and persistent "
              "cache multiplies cloud\nGETs per read; heat pinning trades "
              "local bytes for further tail reduction on\nskewed reads.\n");
  return 0;
}
