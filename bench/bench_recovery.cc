// E5 — Recovery: time to recover from a crash with N MiB of unflushed WAL,
// classic WAL vs eWAL at 2/4/8 segments, plus a WAL-size sweep. Reports
// wall-clock (bounded by this host's core count) and the measured parallel
// critical path (per-shard replay + per-table flush maxima) — the time on a
// host with >= segment cores. Zero-loss is verified every run.
//
//   ./bench_recovery [--small|--large]
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common.h"
#include "env/env.h"
#include "lsm/db.h"
#include "mash/ewal.h"
#include "mash/recovery.h"

using namespace rocksmash;

namespace {

struct Row {
  double wall_ms;
  double parallel_ms;
  uint64_t records;
  uint64_t lost;
};

Row RunOne(const std::string& workdir, int segments, uint64_t wal_bytes,
           Env* env) {
  const std::string dbname =
      workdir + "/db_s" + std::to_string(segments) + "_b" +
      std::to_string(wal_bytes);
  bench::CheckOk(env->CreateDirRecursively(dbname), "create bench db dir");

  std::unique_ptr<WalManager> wal;
  if (segments == 1) {
    wal = NewClassicWalManager(env, dbname);
  } else {
    EWalOptions ew;
    ew.segments = segments;
    wal = NewEWalManager(env, dbname, ew);
  }

  DBOptions options;
  options.env = env;
  options.wal_manager = wal.get();
  options.recovery_threads = segments;
  options.write_buffer_size = 2 * wal_bytes;
  // Feed the shared ticker snapshot in BENCH_recovery.json (wal.*,
  // recovery.* tickers from the fill and the measured reopen).
  options.statistics = bench::BenchStatistics().get();

  CrashWorkloadOptions crash;
  crash.wal_bytes = wal_bytes;
  crash.value_size = 512;

  uint64_t keys = 0;
  {
    std::unique_ptr<DB> db;
    if (!DB::Open(options, dbname, &db).ok() ||
        !FillWalForCrash(db.get(), crash, &keys).ok()) {
      std::abort();
    }
  }

  RecoveryMeasurement m = MeasureRecovery(options, dbname);
  Row row{};
  row.wall_ms = m.stats.wall_micros / 1000.0;
  row.parallel_ms =
      (m.stats.replay_critical_micros + m.stats.flush_critical_micros) /
      1000.0;
  row.records = m.stats.records_replayed;

  std::unique_ptr<DB> db;
  if (DB::Open(options, dbname, &db).ok()) {
    row.lost = VerifyRecoveredKeys(db.get(), crash, keys);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // In-memory env: replay is CPU-bound (fast-NVMe regime); see DESIGN.md on
  // the 1-core host limitation.
  auto env = NewMemEnv();
  const std::string workdir = "/bench_recovery";
  bench::JsonReport report("recovery");

  const int wal_mib = smoke ? 2 : (small ? 16 : 64);
  std::printf("E5a — recovery time vs eWAL striping (%d MiB unflushed WAL)\n\n",
              wal_mib);
  std::printf("%-10s %12s %14s %12s %10s %8s\n", "WAL", "wall(ms)",
              "parallel(ms)", "speedup", "records", "lost");
  const uint64_t wal_bytes = static_cast<uint64_t>(wal_mib) << 20;
  double base_parallel = 0;
  for (int segments : {1, 2, 4, 8, 16}) {
    Row r = RunOne(workdir, segments, wal_bytes, env.get());
    if (segments == 1) base_parallel = r.parallel_ms;
    char name[24];
    std::snprintf(name, sizeof(name),
                  segments == 1 ? "classic" : "eWAL-%d", segments);
    std::printf("%-10s %12.1f %14.1f %11.2fx %10llu %8llu\n", name, r.wall_ms,
                r.parallel_ms,
                r.parallel_ms > 0 ? base_parallel / r.parallel_ms : 0.0,
                (unsigned long long)r.records, (unsigned long long)r.lost);
    std::fflush(stdout);
    report.Row(name);
    report.Metric("records", static_cast<double>(r.records));
    report.Metric("wall_ms", r.wall_ms);
    report.Metric("parallel_ms", r.parallel_ms);
    report.Metric("lost", static_cast<double>(r.lost));
  }

  std::printf("\nE5b — recovery time vs WAL size (eWAL-4 vs classic)\n\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "WAL MiB", "classic wall",
              "classic par.", "eWAL-4 wall", "eWAL-4 par.");
  for (uint64_t mib : {4ull, 8ull, 16ull, small ? 24ull : 32ull}) {
    Row c = RunOne(workdir, 1, mib << 20, env.get());
    Row e = RunOne(workdir, 4, mib << 20, env.get());
    std::printf("%-10llu %14.1f %14.1f %14.1f %14.1f\n",
                (unsigned long long)mib, c.wall_ms, c.parallel_ms, e.wall_ms,
                e.parallel_ms);
    std::fflush(stdout);
  }

  std::printf("\nShape check: parallel recovery time scales near-linearly "
              "with segments until\nthe flush stage dominates; recovery time "
              "grows linearly with WAL volume.\n");
  return 0;
}
