// E13 — Batched reads: DB::MultiGet vs a loop of Get on a cloud-heavy
// RocksMash rig (every level cloud-resident, caches too small to absorb the
// working set). MultiGet snapshots once, coalesces duplicate/adjacent blocks
// and fans cloud misses out in parallel, so a cold batch should beat the
// same keys issued one Get at a time.
//
//   ./bench_multiget [--small|--large|--smoke]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

namespace {

// Cloud-heavy variant of the standard rig: all levels live in the cloud and
// the RAM/local caches are tiny, so uniform reads keep missing to the cloud
// and the batch path has real fetch latency to amortize.
SchemeOptions CloudHeavyOptions() {
  SchemeOptions o = DefaultSchemeOptions();
  o.cloud_level_start = 0;
  o.block_cache_bytes = 64 << 10;
  o.local_cache_bytes = 64 << 10;
  // Point-read tuning: a one-block readahead window means uniform random
  // reads pay a real cloud GET per miss instead of streaming whole files.
  o.cloud_readahead_bytes = 4 << 10;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_multiget";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("multiget");

  DriverSpec spec;
  spec.num_keys = scale.num_keys;
  spec.num_ops = scale.num_ops;
  spec.value_size = scale.value_size;
  spec.distribution = Distribution::kUniform;
  spec.batch_size = 16;

  std::printf("E13 — MultiGet vs looped Get, %llu keys x %zu B, %llu uniform "
              "reads, batch=%d\n\n",
              (unsigned long long)spec.num_keys, spec.value_size,
              (unsigned long long)spec.num_ops, spec.batch_size);
  std::printf("%-16s %12s %10s %10s\n", "mode", "keys/sec", "p50", "p99");

  // Separate rigs for the two modes so both start equally cold (same data,
  // fresh caches); cloud latency dominates either way.
  Rig loop_rig = OpenRig(workdir + "/loop", SchemeKind::kRocksMash,
                         CloudHeavyOptions());
  Rig batch_rig = OpenRig(workdir + "/batch", SchemeKind::kRocksMash,
                          CloudHeavyOptions());
  LoadAndSettle(loop_rig, spec);
  LoadAndSettle(batch_rig, spec);

  auto row = [&](const char* label, const DriverResult& r) {
    std::printf("%-16s %12.0f %10.0f %10.0f\n", label, r.throughput_ops_sec,
                r.latency_us.Percentile(50), r.latency_us.Percentile(99));
    std::fflush(stdout);
    report.AddResult(label, r);
  };

  // Cold: first pass over the freshly-settled stores.
  DriverResult cold_loop = ReadRandom(loop_rig.store.get(), spec);
  row("cold.loop", cold_loop);
  DriverResult cold_multi = MultiGetRandom(batch_rig.store.get(), spec);
  row("cold.multiget", cold_multi);

  // Warm: second pass reuses whatever the caches kept.
  DriverResult warm_loop = ReadRandom(loop_rig.store.get(), spec);
  row("warm.loop", warm_loop);
  DriverResult warm_multi = MultiGetRandom(batch_rig.store.get(), spec);
  row("warm.multiget", warm_multi);

  const double speedup =
      cold_loop.throughput_ops_sec > 0
          ? cold_multi.throughput_ops_sec / cold_loop.throughput_ops_sec
          : 0;
  report.Row("summary");
  report.Metric("cold_speedup", speedup);
  report.Metric(
      "cloud_parallel_gets",
      static_cast<double>(BenchStatistics()->GetTickerCount(
          MULTIGET_CLOUD_PARALLEL_GETS)));
  report.Metric("coalesced_blocks",
                static_cast<double>(BenchStatistics()->GetTickerCount(
                    MULTIGET_COALESCED_BLOCKS)));

  std::printf("\ncold MultiGet speedup over looped Get: %.2fx\n", speedup);
  std::printf("Shape check: cold MultiGet outruns looped Get by overlapping "
              "cloud fetches\n(multiget.cloud.parallel.gets > 0); warm passes "
              "converge as caches absorb reads.\n");
  return 0;
}
