// Microbenchmarks for the write path substrates: skiplist/memtable insert &
// lookup, write batch construction.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "lsm/memtable.h"
#include "lsm/write_batch.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(i));
  return buf;
}

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  Random64 rng(1);
  uint64_t seq = 1;
  std::string value(256, 'v');
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, Key(rng.Next()), value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGetHit(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  const int kN = 100000;
  std::string value(256, 'v');
  for (int i = 0; i < kN; i++) {
    mem->Add(i + 1, kTypeValue, Key(i), value);
  }
  Random64 rng(2);
  std::string out;
  for (auto _ : state) {
    Status s;
    LookupKey lkey(Key(rng.Uniform(kN)), kN + 1);
    benchmark::DoNotOptimize(mem->Get(lkey, &out, &s));
  }
  mem->Unref();
}
BENCHMARK(BM_MemTableGetHit);

void BM_WriteBatchPut(benchmark::State& state) {
  std::string value(256, 'v');
  WriteBatch batch;
  uint64_t i = 0;
  for (auto _ : state) {
    batch.Put(Key(i++), value);
    if (batch.ApproximateSize() > (4 << 20)) {
      batch.Clear();
    }
  }
}
BENCHMARK(BM_WriteBatchPut);

void BM_WriteBatchInsertIntoMemTable(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  std::string value(256, 'v');
  uint64_t key_counter = 0;
  uint64_t seq = 1;
  for (auto _ : state) {
    state.PauseTiming();
    WriteBatch batch;
    for (int i = 0; i < 100; i++) {
      batch.Put(Key(key_counter++), value);
    }
    WriteBatchInternal::SetSequence(&batch, seq);
    seq += 100;
    MemTable* mem = new MemTable(icmp);
    mem->Ref();
    state.ResumeTiming();
    if (!WriteBatchInternal::InsertInto(&batch, mem).ok()) std::abort();
    state.PauseTiming();
    mem->Unref();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_WriteBatchInsertIntoMemTable);

}  // namespace
}  // namespace rocksmash
