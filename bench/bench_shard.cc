// E16 — Sharding: aggregate fillrandom + readrandom at 1/2/4/8 engine
// shards and 8/16 client threads, all shards drawing from one
// SharedResources (one block cache at fixed capacity, one background-lane
// pool set, one Statistics object).
//
//   ./bench_shard [--smoke|--small|--large]
//
// Methodology. The single-shard write path commits through one WAL: group
// commit amortizes the fsync, but consecutive groups serialize on the one
// log. Sharding gives N independent WAL + memtable pipelines. To measure
// that — and not the size of an unbounded group merge — the group byte cap
// is set to one client batch (the same fixed-group-size methodology as
// bench_write's pipelined-vs-serial mode). Writers are shard-affine the way
// real sharded-store clients are: each thread partitions its random keys
// with the router's own hash (ShardedDB::ShardOfKey) and carries full
// batches to one shard, so the comparison holds total threads, keys, bytes,
// cache capacity, and background lanes constant while varying only the
// shard count. Every kMixedBatchEvery-th batch is left unpartitioned and
// crosses shards, exercising the router's splitter
// (shard.write.batches.split). The read phase mixes point Gets with 16-key
// MultiGets (shard.multiget.fanout).
//
// Like bench_write's threaded mode, the store runs on a hermetic MemEnv
// wrapped in TimedEnv with a modeled WAL fsync, so the numbers measure the
// write front-end rather than CI-runner filesystem noise.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "env/env.h"
#include "lsm/shared_resources.h"
#include "lsm/sharded_db.h"
#include "util/histogram.h"
#include "util/random.h"

using namespace rocksmash;
using namespace rocksmash::bench;

namespace {

// Keys per client batch. Small values keep the workload apply-bound (same
// rationale as bench_write): memtable-insert cost is per-key, WAL append is
// per-byte, and both price every shard count identically.
constexpr int kBatchKeys = 224;
constexpr size_t kShardValueSize = 16;

// Group cap ~= one client batch (224 keys x ~52 WAL bytes each). With the
// cap at one batch, the single-WAL baseline commits one batch per modeled
// fsync instead of hiding the serial log behind ever-larger group merges,
// and an N-shard store commits up to N batches per fsync interval.
constexpr size_t kWriteGroupCap = 12 << 10;

// Every Nth batch is left unpartitioned (random keys, multiple shards):
// the router splits it into per-shard sub-batches, which is the
// cross-shard write cost the bench should not hide.
constexpr int kMixedBatchEvery = 16;

// Modeled WAL-device fsync latency (commodity SSD), as in bench_write.
constexpr uint64_t kWalSyncMicros = 1000;

// Keys fetched per MultiGet in the read phase; every kMultiGetEvery-th
// read op is a MultiGet instead of a point Get.
constexpr int kMultiGetKeys = 16;
constexpr int kMultiGetEvery = 8;

// Best-of reps for the headline shard counts at 8 threads (the gate pair);
// other cells run once. Max-of-reps is the least-contaminated estimate on
// a shared runner (interference only subtracts throughput).
constexpr int kGateReps = 3;

const int kShardCounts[] = {1, 2, 4, 8};
const int kThreadCounts[] = {8, 16};

struct PhaseResult {
  uint64_t operations = 0;
  uint64_t errors = 0;
  uint64_t found = 0;
  double throughput_ops_sec = 0;
  Histogram latency_us;
};

void MakeKey(char* buf, size_t len, unsigned long long k, int thread) {
  std::snprintf(buf, len, "user%016llu.%03d", k, thread);
}

// num_keys random-key writes split across `threads` writers in
// kBatchKeys-key sync-WAL batches. Thread t is affine to shard
// (t % num_shards): it draws random keys and keeps the ones the router
// would send to its shard, so batches commit without splitting; every
// kMixedBatchEvery-th batch skips the filter and crosses shards.
// Throughput counts keys; the histogram records per-batch commit latency.
PhaseResult ConcurrentShardFill(KVStore* store, const Scale& scale,
                                int threads, int num_shards) {
  PhaseResult result;
  const uint64_t per_thread = scale.num_keys / threads;
  std::atomic<uint64_t> errors{0};
  std::vector<Histogram> lat(threads);
  SystemClock* clock = SystemClock::Default();
  const uint64_t start_micros = clock->NowMicros();
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (int t = 0; t < threads; t++) {
    writers.emplace_back([store, &scale, &errors, &lat, per_thread, t,
                          num_shards, clock] {
      Random64 rnd(static_cast<uint64_t>(2016) * (t + 1));
      const std::string value(kShardValueSize, 'v');
      const uint32_t shards = static_cast<uint32_t>(num_shards);
      const uint32_t affinity = static_cast<uint32_t>(t) % shards;
      WriteOptions wo;
      wo.sync = true;
      char key[40];
      uint64_t written = 0;
      int batch_no = 0;
      while (written < per_thread) {
        // First of every kMixedBatchEvery is the mixed one, so even a
        // smoke-scale run (a handful of batches per thread) exercises the
        // splitter.
        const bool mixed = (batch_no++ % kMixedBatchEvery) == 0;
        WriteBatch batch;
        for (int b = 0; b < kBatchKeys && written < per_thread; written++) {
          MakeKey(key, sizeof(key), rnd.Next() % scale.num_keys, t);
          if (!mixed &&
              ShardedDB::ShardOfKey(Slice(key), shards) != affinity) {
            // Another thread covers this shard; redraw (written still
            // advances so total volume is identical at every shard count).
            continue;
          }
          batch.Put(key, value);
          b++;
        }
        const uint64_t t0 = clock->NowMicros();
        if (!store->Write(wo, &batch).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        lat[t].Add(static_cast<double>(clock->NowMicros() - t0));
      }
    });
  }
  for (auto& w : writers) w.join();
  const uint64_t wall = clock->NowMicros() - start_micros;
  result.operations = per_thread * threads;
  result.errors = errors.load();
  for (const Histogram& h : lat) result.latency_us.Merge(h);
  result.throughput_ops_sec =
      wall == 0 ? 0 : 1e6 * static_cast<double>(result.operations) / wall;
  return result;
}

// num_ops random reads split across `threads` readers: point Gets, with
// every kMultiGetEvery-th op a kMultiGetKeys-key MultiGet (which the
// router fans out per shard). Random keys over the fill's keyspace, so a
// miss is a legitimate NotFound; `found` counts hits.
PhaseResult ConcurrentShardRead(KVStore* store, const Scale& scale,
                                int threads) {
  PhaseResult result;
  const uint64_t per_thread =
      std::max<uint64_t>(scale.num_ops / threads, 1);
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> found{0};
  std::vector<Histogram> lat(threads);
  SystemClock* clock = SystemClock::Default();
  const uint64_t start_micros = clock->NowMicros();
  std::vector<std::thread> readers;
  readers.reserve(threads);
  for (int t = 0; t < threads; t++) {
    readers.emplace_back([store, &scale, &errors, &found, &lat, per_thread,
                          t, threads, clock] {
      Random64 rnd(static_cast<uint64_t>(7919) * (t + 1));
      ReadOptions ro;
      char key[40];
      uint64_t done = 0;
      uint64_t hits = 0;
      int op_no = 0;
      while (done < per_thread) {
        if (++op_no % kMultiGetEvery == 0) {
          std::vector<std::string> keys(kMultiGetKeys);
          std::vector<Slice> key_slices;
          key_slices.reserve(kMultiGetKeys);
          for (int i = 0; i < kMultiGetKeys; i++) {
            MakeKey(key, sizeof(key), rnd.Next() % scale.num_keys,
                    static_cast<int>(rnd.Next() % threads));
            keys[i] = key;
            key_slices.emplace_back(keys[i]);
          }
          std::vector<std::string> values;
          std::vector<Status> statuses;
          const uint64_t t0 = clock->NowMicros();
          store->MultiGet(ro, key_slices, &values, &statuses);
          lat[t].Add(static_cast<double>(clock->NowMicros() - t0));
          for (const Status& s : statuses) {
            if (s.ok()) {
              hits++;
            } else if (!s.IsNotFound()) {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
          done += kMultiGetKeys;
        } else {
          MakeKey(key, sizeof(key), rnd.Next() % scale.num_keys,
                  static_cast<int>(rnd.Next() % threads));
          std::string value;
          const uint64_t t0 = clock->NowMicros();
          Status s = store->Get(ro, key, &value);
          lat[t].Add(static_cast<double>(clock->NowMicros() - t0));
          if (s.ok()) {
            hits++;
          } else if (!s.IsNotFound()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          done++;
        }
      }
      found.fetch_add(hits, std::memory_order_relaxed);
    });
  }
  for (auto& r : readers) r.join();
  const uint64_t wall = clock->NowMicros() - start_micros;
  result.operations = per_thread * threads;
  result.errors = errors.load();
  result.found = found.load();
  for (const Histogram& h : lat) result.latency_us.Merge(h);
  result.throughput_ops_sec =
      wall == 0 ? 0 : 1e6 * static_cast<double>(result.operations) / wall;
  return result;
}

struct CellResult {
  PhaseResult fill;
  PhaseResult read;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_shard";
  Scale scale = ParseScale(argc, argv);

  // Enough keys that every cell spends real time in steady state; values
  // are fixed at kShardValueSize (see above).
  if (scale.smoke && scale.num_keys < 16000) scale.num_keys = 16000;
  if (!scale.smoke && scale.num_keys < 200000) scale.num_keys = 200000;
  if (scale.smoke && scale.num_ops < 8000) scale.num_ops = 8000;
  if (!scale.smoke && scale.num_ops < 60000) scale.num_ops = 60000;
  scale.value_size = kShardValueSize;

  JsonReport report("shard");

  // Memtables big enough that no flush lands inside the timed region (the
  // per-shard buffer is the base divided by the shard count, so the total
  // memtable budget is the same at every shard count).
  SchemeOptions base = DefaultSchemeOptions();
  base.write_buffer_size = 32 << 20;
  base.max_file_size = 4 << 20;
  base.max_bytes_for_level_base = 32 << 20;
  base.max_write_group_bytes = kWriteGroupCap;
  base.enable_pipelined_write = true;
  base.allow_concurrent_memtable_write = true;

  std::printf("E16 — sharded fillrandom + readrandom, %llu keys x %zu B, "
              "shards x threads grid\n\n",
              (unsigned long long)scale.num_keys, scale.value_size);
  std::printf("%-24s %12s %10s %12s %10s %8s\n", "config", "fill ops/s",
              "fill p99", "read ops/s", "read p99", "errors");

  // One run of a (shards, threads) cell: fresh hermetic rig, every shard
  // drawing from one SharedResources sized identically at every shard
  // count (same cache capacity, same lane-thread budget, one Statistics).
  auto run_cell = [&](int shards, int threads) {
    std::unique_ptr<Env> mem_env = NewMemEnv();
    DeviceLatencyModel wal_device;
    wal_device.sync_micros = kWalSyncMicros;
    std::unique_ptr<Env> timed_env =
        NewTimedEnv(mem_env.get(), SystemClock::Default(), wal_device);

    SharedResourcesOptions sro;
    sro.block_cache_bytes = base.block_cache_bytes;
    sro.flush_threads = 2;
    sro.compaction_threads = 2;
    sro.statistics = BenchStatistics().get();
    std::shared_ptr<SharedResources> shared;
    bench::CheckOk(SharedResources::Create(sro, &shared),
                   "shared resources");

    SchemeOptions opts = base;
    opts.env = timed_env.get();
    opts.num_shards = shards;
    opts.shared_resources = shared;
    Rig rig = OpenRig(workdir, SchemeKind::kLocalOnly, opts);

    CellResult cell;
    cell.fill = ConcurrentShardFill(rig.store.get(), scale, threads, shards);
    bench::CheckOk(rig.store->FlushMemTable(), "settle flush");
    rig.store->WaitForCompaction();
    cell.read = ConcurrentShardRead(rig.store.get(), scale, threads);
    return cell;
  };

  auto emit = [&](int shards, int threads, const CellResult& cell) {
    const std::string label =
        "shards=" + std::to_string(shards) +
        "/threads=" + std::to_string(threads);
    std::printf("%-24s %12.0f %10.0f %12.0f %10.0f %8llu\n", label.c_str(),
                cell.fill.throughput_ops_sec,
                cell.fill.latency_us.Percentile(99),
                cell.read.throughput_ops_sec,
                cell.read.latency_us.Percentile(99),
                (unsigned long long)(cell.fill.errors + cell.read.errors));
    std::fflush(stdout);
    report.Row(label + "/fill");
    report.Metric("shards", shards);
    report.Metric("threads", threads);
    report.Metric("ops", static_cast<double>(cell.fill.operations));
    report.Metric("ops_per_sec", cell.fill.throughput_ops_sec);
    report.Metric("p50_us", cell.fill.latency_us.Percentile(50));
    report.Metric("p99_us", cell.fill.latency_us.Percentile(99));
    report.Metric("errors", static_cast<double>(cell.fill.errors));
    report.Row(label + "/read");
    report.Metric("shards", shards);
    report.Metric("threads", threads);
    report.Metric("ops", static_cast<double>(cell.read.operations));
    report.Metric("ops_per_sec", cell.read.throughput_ops_sec);
    report.Metric("p50_us", cell.read.latency_us.Percentile(50));
    report.Metric("p99_us", cell.read.latency_us.Percentile(99));
    report.Metric("found", static_cast<double>(cell.read.found));
    report.Metric("errors", static_cast<double>(cell.read.errors));
  };

  // The acceptance comparison is 4-shard vs 1-shard aggregate fill at 8
  // threads; those two cells run best-of-kGateReps.
  double shard1_fill_8t = 0;
  double shard4_fill_8t = 0;
  for (int shards : kShardCounts) {
    for (int threads : kThreadCounts) {
      const bool gate_cell = threads == 8 && (shards == 1 || shards == 4);
      const int reps = gate_cell ? kGateReps : 1;
      CellResult best;
      for (int rep = 0; rep < reps; rep++) {
        CellResult r = run_cell(shards, threads);
        if (rep == 0 || r.fill.throughput_ops_sec >
                            best.fill.throughput_ops_sec) {
          best = std::move(r);
        }
      }
      emit(shards, threads, best);
      if (gate_cell && shards == 1) shard1_fill_8t =
          best.fill.throughput_ops_sec;
      if (gate_cell && shards == 4) shard4_fill_8t =
          best.fill.throughput_ops_sec;
    }
  }

  const double speedup =
      shard1_fill_8t > 0 ? shard4_fill_8t / shard1_fill_8t : 0;
  report.Row("gate");
  report.Metric("shard1_fill_ops_per_sec_8t", shard1_fill_8t);
  report.Metric("shard4_fill_ops_per_sec_8t", shard4_fill_8t);
  report.Metric("shard4_vs_shard1_fill_speedup", speedup);
  report.Metric("shard4_fill_beats_shard1",
                shard4_fill_8t > shard1_fill_8t ? 1 : 0);

  std::printf("\n4-shard / 1-shard aggregate fill throughput at 8 threads: "
              "%.2fx\n", speedup);
  std::printf("Shape check: fill throughput scales with the shard count "
              "(N independent WAL +\nmemtable pipelines behind one shared "
              "cache and lane pool); reads are flat to\nmildly better from "
              "per-shard memtable/version fanning.\n");
  return 0;
}
