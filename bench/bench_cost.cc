// E8 — Cost-effectiveness: steady-state YCSB-B per scheme; reports $/month
// (storage + requests) and $ per million operations of delivered
// throughput — the cost-performance table.
//
//   ./bench_cost [--small|--large]
#include <cstdio>

#include "common.h"

using namespace rocksmash;
using namespace rocksmash::bench;

int main(int argc, char** argv) {
  const std::string workdir = "/tmp/rocksmash_bench_cost";
  Scale scale = ParseScale(argc, argv);
  JsonReport report("cost");

  YcsbSpec base;
  base.record_count = scale.num_keys;
  base.operation_count = scale.num_ops;
  base.value_size = scale.value_size;
  YcsbSpec spec = YcsbWorkload('B', base);

  std::printf("E8 — cost-effectiveness, YCSB-B steady state "
              "(%llu records x %zu B)\n\n",
              (unsigned long long)spec.record_count, spec.value_size);
  std::printf("%-14s %12s %12s %12s %12s %14s\n", "scheme", "ops/sec",
              "storage$", "requests$", "total$/mo", "$ per Mops");

  CostMeter meter;
  for (SchemeKind kind : kAllSchemes) {
    Rig rig = OpenRig(workdir, kind);
    if (!YcsbLoad(rig.store.get(), spec).ok()) return 1;
    bench::CheckOk(rig.store->FlushMemTable(), "load flush");
    rig.store->WaitForCompaction();
    YcsbSpec warm = spec;
    warm.operation_count = spec.operation_count / 4;
    YcsbRun(rig.store.get(), warm);

    // Snapshot counters across the measured run only.
    auto before = rig.options.cloud != nullptr
                      ? rig.options.cloud->Counters()
                      : ObjectStore::OpCounters{};
    YcsbResult result = YcsbRun(rig.store.get(), spec);
    auto after = rig.options.cloud != nullptr
                     ? rig.options.cloud->Counters()
                     : ObjectStore::OpCounters{};
    ObjectStore::OpCounters delta;
    delta.gets = after.gets - before.gets;
    delta.puts = after.puts - before.puts;
    delta.heads = after.heads - before.heads;
    delta.lists = after.lists - before.lists;
    delta.bytes_downloaded = after.bytes_downloaded - before.bytes_downloaded;

    auto stats = rig.store->Stats();
    const double hours = result.wall_micros / 3.6e9;
    auto cost = meter.MonthlyCost(
        stats.storage.cloud_bytes,
        stats.storage.local_bytes + stats.persistent_cache.disk_bytes +
            stats.persistent_cache.metadata.bytes + stats.file_cache_bytes,
        delta, hours);

    // $ per million ops at the measured throughput, if sustained for the
    // month that the $ figure covers.
    const double mops_per_month =
        result.throughput_ops_sec * 3600.0 * 730.0 / 1e6;
    const double usd_per_mops =
        mops_per_month > 0 ? cost.total() / mops_per_month : 0;

    std::printf("%-14s %12.0f %12.4f %12.4f %12.4f %14.6f\n",
                rig.store->Name(), result.throughput_ops_sec,
                cost.cloud_storage_usd + cost.local_storage_usd,
                cost.cloud_requests_usd, cost.total(), usd_per_mops);
    std::fflush(stdout);
    report.Row(rig.store->Name());
    report.Metric("ops", static_cast<double>(spec.operation_count));
    report.Metric("ops_per_sec", result.throughput_ops_sec);
    report.Metric("read_p99_us", result.read_latency_us.Percentile(99));
    report.Metric("total_usd_month", cost.total());
    report.Metric("usd_per_mops", usd_per_mops);
  }

  std::printf("\nShape check: RocksMash's storage bill tracks CloudOnly "
              "(bulk bytes in the cloud)\nwhile its request bill collapses "
              "(reads served locally), so $/Mops lands near\nLocalOnly at a "
              "fraction of its capacity cost.\n");
  return 0;
}
