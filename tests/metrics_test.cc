// Tests for the unified observability layer (ISSUE 3):
//   - Statistics tickers: naming, counting, monotonicity, reset;
//   - HistogramImpl: correctness under concurrent writers (tsan target);
//   - PerfContext: thread-local isolation and level gating;
//   - EventListener: flush/compaction/recovery (engine), upload
//     completed/failed/parked (tiered storage), cache eviction (pcache);
//   - Prometheus text exposition format validity;
//   - full-stack acceptance: a mixed workload on a RocksMash rig produces
//     non-zero persistent-cache hits, cloud GETs, and per-lane compaction
//     bytes (the ISSUE acceptance criteria).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/kvstore.h"
#include "cloud/object_store.h"
#include "env/env.h"
#include "mash/persistent_cache.h"
#include "mash/placement.h"
#include "mash/rocksmash_db.h"
#include "util/clock.h"
#include "util/event_listener.h"
#include "util/metrics.h"
#include "util/perf_context.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/rocksmash_metrics_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Counts every callback; thread-safe per the EventListener contract.
class CountingListener : public EventListener {
 public:
  void OnFlushCompleted(const FlushJobInfo& info) override {
    flushes++;
    if (info.file_size > 0) nonempty_flushes++;
  }
  void OnCompactionCompleted(const CompactionJobInfo& info) override {
    compactions++;
    compaction_bytes_written += info.bytes_written;
    if (info.trivial_move) trivial_moves++;
  }
  void OnUploadCompleted(const UploadJobInfo& info) override {
    uploads_completed++;
    std::lock_guard<std::mutex> l(mu);
    last_completed = info;
  }
  void OnUploadFailed(const UploadJobInfo& info) override {
    uploads_failed++;
    std::lock_guard<std::mutex> l(mu);
    last_failed = info;
  }
  void OnUploadParked(const UploadJobInfo& /*info*/) override {
    uploads_parked++;
  }
  void OnCacheEviction(const CacheEvictionInfo& info) override {
    evictions++;
    evicted_bytes += info.evicted_bytes;
  }
  void OnRecoveryPhase(const RecoveryPhaseInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    recovery_phases.push_back(info.phase);
    recovery_items += info.items;
  }

  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> nonempty_flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_bytes_written{0};
  std::atomic<uint64_t> trivial_moves{0};
  std::atomic<uint64_t> uploads_completed{0};
  std::atomic<uint64_t> uploads_failed{0};
  std::atomic<uint64_t> uploads_parked{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> evicted_bytes{0};

  std::mutex mu;
  UploadJobInfo last_completed;
  UploadJobInfo last_failed;
  std::vector<std::string> recovery_phases;
  uint64_t recovery_items = 0;
};

TEST(Statistics, TickerAndHistogramNamesAreUniqueAndDotted) {
  std::vector<std::string> seen;
  for (uint32_t t = 0; t < TICKER_ENUM_MAX; t++) {
    std::string name = TickerName(t);
    EXPECT_NE("unknown", name) << "ticker " << t;
    for (char c : name) {
      EXPECT_TRUE((std::islower(static_cast<unsigned char>(c)) != 0) ||
                  c == '.' || std::isdigit(static_cast<unsigned char>(c)))
          << "ticker name '" << name << "' has char '" << c << "'";
    }
    for (const std::string& prev : seen) EXPECT_NE(prev, name);
    seen.push_back(name);
  }
  seen.clear();
  for (uint32_t h = 0; h < HISTOGRAM_ENUM_MAX; h++) {
    std::string name = HistogramName(h);
    EXPECT_NE("unknown", name) << "histogram " << h;
    for (const std::string& prev : seen) EXPECT_NE(prev, name);
    seen.push_back(name);
  }
  EXPECT_STREQ("unknown", TickerName(TICKER_ENUM_MAX));
  EXPECT_STREQ("unknown", HistogramName(HISTOGRAM_ENUM_MAX));
}

TEST(Statistics, RecordTickCountsAndResets) {
  auto stats = CreateDBStatistics();
  EXPECT_EQ(0u, stats->GetTickerCount(CLOUD_GET_COUNT));
  stats->RecordTick(CLOUD_GET_COUNT);
  stats->RecordTick(CLOUD_GET_COUNT, 41);
  EXPECT_EQ(42u, stats->GetTickerCount(CLOUD_GET_COUNT));
  stats->RecordInHistogram(GET_LATENCY_US, 7.0);
  EXPECT_EQ(1u, stats->GetHistogramSnapshot(GET_LATENCY_US).Count());

  // Out-of-range indices are ignored, not UB.
  stats->RecordTick(TICKER_ENUM_MAX + 5);
  EXPECT_EQ(0u, stats->GetTickerCount(TICKER_ENUM_MAX + 5));
  stats->RecordInHistogram(HISTOGRAM_ENUM_MAX + 5, 1.0);

  stats->Reset();
  EXPECT_EQ(0u, stats->GetTickerCount(CLOUD_GET_COUNT));
  EXPECT_EQ(0u, stats->GetHistogramSnapshot(GET_LATENCY_US).Count());
}

TEST(Statistics, NullSafeHelpersNoOp) {
  RecordTick(nullptr, NUM_KEYS_READ);
  RecordInHistogram(nullptr, GET_LATENCY_US, 1.0);
  StopWatch sw(nullptr, GET_LATENCY_US);
  EXPECT_EQ(0u, sw.ElapsedMicros());
}

// 8 writer threads hammer one Statistics object: ticker totals and histogram
// counts must be exact, and percentiles must be inside the recorded value
// range. Runs under the tsan preset as the concurrency proof.
TEST(Statistics, ConcurrentWritersAreExact) {
  auto stats = CreateDBStatistics();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; i++) {
        stats->RecordTick(NUM_KEYS_WRITTEN);
        stats->RecordTick(WAL_BYTES, 10);
        // Values span [1, 1000] across threads.
        stats->RecordInHistogram(WRITE_LATENCY_US,
                                 1.0 + ((t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(uint64_t{kThreads} * kPerThread,
            stats->GetTickerCount(NUM_KEYS_WRITTEN));
  EXPECT_EQ(uint64_t{kThreads} * kPerThread * 10,
            stats->GetTickerCount(WAL_BYTES));

  Histogram snap = stats->GetHistogramSnapshot(WRITE_LATENCY_US);
  EXPECT_EQ(uint64_t{kThreads} * kPerThread, snap.Count());
  EXPECT_GE(snap.Percentile(50), 1.0);
  EXPECT_LE(snap.Percentile(50), 1000.0);
  EXPECT_GE(snap.Percentile(99), snap.Percentile(50));
  EXPECT_LE(snap.Percentile(99), 1000.0);
}

TEST(HistogramImplTest, SnapshotMergesStripes) {
  HistogramImpl hist;
  for (int i = 1; i <= 100; i++) hist.Add(static_cast<double>(i));
  EXPECT_EQ(100u, hist.Count());
  Histogram snap = hist.Snapshot();
  EXPECT_EQ(100u, snap.Count());
  EXPECT_NEAR(50.5, snap.Average(), 1.0);
  hist.Clear();
  EXPECT_EQ(0u, hist.Count());
}

// Two threads with different PerfLevels: counters land only on the thread
// that enabled them, and never leak across threads.
TEST(PerfContextTest, ThreadIsolationAndLevelGating) {
  // This thread: disabled — nothing is recorded.
  SetPerfLevel(PerfLevel::kDisable);
  GetPerfContext()->Reset();
  PerfCount(&PerfContext::get_count);
  EXPECT_EQ(0u, GetPerfContext()->get_count);

  uint64_t other_count = 0;
  std::thread other([&other_count] {
    SetPerfLevel(PerfLevel::kEnableCount);
    GetPerfContext()->Reset();
    PerfCount(&PerfContext::get_count);
    PerfCount(&PerfContext::cloud_read_bytes, 4096);
    other_count = GetPerfContext()->get_count;
    EXPECT_EQ(4096u, GetPerfContext()->cloud_read_bytes);
    EXPECT_NE(std::string::npos,
              GetPerfContext()->ToString().find("get_count = 1"));
  });
  other.join();

  EXPECT_EQ(1u, other_count);
  // The other thread's activity did not touch this thread's context.
  EXPECT_EQ(0u, GetPerfContext()->get_count);
  EXPECT_EQ(0u, GetPerfContext()->cloud_read_bytes);

  // ToString of an all-zero context is empty.
  GetPerfContext()->Reset();
  EXPECT_TRUE(GetPerfContext()->ToString().empty());
}

// Validates Prometheus text exposition format: every line is a "# HELP",
// "# TYPE", or a sample "<name>[{labels}] <value>" with a legal metric name
// and a parseable number; every declared counter for a non-zero ticker shows
// up with the right value.
TEST(Statistics, PrometheusDumpIsValidTextFormat) {
  auto stats = CreateDBStatistics();
  stats->RecordTick(CLOUD_GET_COUNT, 3);
  stats->RecordTick(PERSISTENT_CACHE_HIT, 17);
  for (int i = 1; i <= 10; i++) {
    stats->RecordInHistogram(GET_LATENCY_US, static_cast<double>(i));
  }

  const std::string dump = stats->DumpPrometheus();
  ASSERT_FALSE(dump.empty());
  ASSERT_EQ('\n', dump.back()) << "exposition must end with a newline";

  auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')) {
        return false;
      }
    }
    return !std::isdigit(static_cast<unsigned char>(name[0]));
  };

  std::istringstream in(dump);
  std::string line;
  int samples = 0, type_lines = 0;
  bool saw_cloud_get = false, saw_pcache_hit = false, saw_get_latency = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      // "# TYPE <name> <counter|summary|gauge|...>".
      std::istringstream ts(line.substr(7));
      std::string name, kind;
      ASSERT_TRUE(static_cast<bool>(ts >> name >> kind)) << line;
      EXPECT_TRUE(valid_name(name)) << line;
      type_lines++;
      continue;
    }
    ASSERT_NE('#', line[0]) << "unknown comment form: " << line;
    // Sample line: name, optional {labels}, space, float value.
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(std::string::npos, name_end) << line;
    EXPECT_TRUE(valid_name(line.substr(0, name_end))) << line;
    size_t value_pos;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      ASSERT_NE(std::string::npos, close) << line;
      ASSERT_EQ(' ', line[close + 1]) << line;
      value_pos = close + 2;
    } else {
      value_pos = name_end + 1;
    }
    char* end = nullptr;
    const std::string value_str = line.substr(value_pos);
    std::strtod(value_str.c_str(), &end);
    EXPECT_EQ(value_str.c_str() + value_str.size(), end)
        << "unparseable value in: " << line;
    samples++;

    if (line == "rocksmash_cloud_get_count 3") saw_cloud_get = true;
    if (line == "rocksmash_pcache_hit 17") saw_pcache_hit = true;
    if (line.rfind("rocksmash_get_latency_us", 0) == 0) {
      saw_get_latency = true;
    }
  }
  EXPECT_GT(samples, 0);
  EXPECT_GT(type_lines, 0);
  EXPECT_TRUE(saw_cloud_get) << dump;
  EXPECT_TRUE(saw_pcache_hit) << dump;
  EXPECT_TRUE(saw_get_latency) << dump;
}

// Flush, compaction, and recovery listeners fire from the engine with
// plausible payloads, on any scheme (kLocalOnly keeps the cloud out of it).
TEST(EventListeners, FlushCompactionAndRecoveryFire) {
  std::string dir = TestDir("listener_engine");
  CountingListener listener;

  SchemeOptions options;
  options.kind = SchemeKind::kLocalOnly;
  options.local_dir = dir;
  options.write_buffer_size = 16 * 1024;
  options.max_file_size = 16 * 1024;
  options.max_bytes_for_level_base = 64 * 1024;
  options.listeners.push_back(&listener);

  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());

  Random64 rng(11);
  const std::string value(512, 'v');
  for (int i = 0; i < 800; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(400));
    ASSERT_TRUE(store->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  store->WaitForCompaction();

  EXPECT_GT(listener.flushes.load(), 0u);
  EXPECT_GT(listener.nonempty_flushes.load(), 0u);
  EXPECT_GT(listener.compactions.load(), 0u);
  // Trivial moves report zero bytes written; real compactions report > 0.
  if (listener.compactions.load() > listener.trivial_moves.load()) {
    EXPECT_GT(listener.compaction_bytes_written.load(), 0u);
  }
  // Recovery phases fire on every open (a fresh one replays zero records).
  size_t phases_after_fresh_open;
  {
    std::lock_guard<std::mutex> l(listener.mu);
    phases_after_fresh_open = listener.recovery_phases.size();
    EXPECT_GT(phases_after_fresh_open, 0u);
  }

  // Reopen: recovery phases fire again, replaying the unflushed tail.
  const std::string tail_key = "tail";
  ASSERT_TRUE(store->Put(WriteOptions(), tail_key, value).ok());
  store.reset();
  ASSERT_TRUE(OpenKVStore(options, &store).ok());
  {
    std::lock_guard<std::mutex> l(listener.mu);
    ASSERT_EQ(phases_after_fresh_open + 2, listener.recovery_phases.size());
    EXPECT_EQ("wal-replay",
              listener.recovery_phases[phases_after_fresh_open]);
    EXPECT_EQ("memtable-flush",
              listener.recovery_phases[phases_after_fresh_open + 1]);
    EXPECT_GT(listener.recovery_items, 0u);
  }
  std::string got;
  EXPECT_TRUE(store->Get(ReadOptions(), tail_key, &got).ok());
  store.reset();
  std::filesystem::remove_all(dir);
}

// Upload listeners: a healthy upload fires exactly OnUploadCompleted; an
// outage fires OnUploadFailed + OnUploadParked after exhausting retries.
// Ticker counts move in lockstep with the callbacks.
TEST(EventListeners, UploadCompletedAndParkedFire) {
  std::string dir = TestDir("listener_upload");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);
  auto stats = CreateDBStatistics();
  CountingListener listener;

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.async_uploads = true;
  ts.cloud_retry_attempts = 2;
  ts.retry_clock = &clock;
  ts.statistics = stats.get();
  ts.listeners.push_back(&listener);
  TieredTableStorage storage(ts);

  // Healthy upload.
  std::string payload(1000, 'u');
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(storage.NewStagingFile(1, &f).ok());
  ASSERT_TRUE(f->Append(payload).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(storage.Install(1, 0, payload.size(), payload.size() - 100).ok());
  storage.WaitForPendingUploads();

  EXPECT_EQ(1u, listener.uploads_completed.load());
  EXPECT_EQ(0u, listener.uploads_failed.load());
  EXPECT_EQ(0u, listener.uploads_parked.load());
  {
    std::lock_guard<std::mutex> l(listener.mu);
    EXPECT_EQ(1u, listener.last_completed.file_number);
    EXPECT_EQ(payload.size(), listener.last_completed.bytes);
    EXPECT_EQ(0u, listener.last_completed.retries);
  }
  EXPECT_EQ(1u, stats->GetTickerCount(CLOUD_UPLOADS_COMPLETED));
  EXPECT_EQ(0u, stats->GetTickerCount(CLOUD_UPLOADS_PARKED));

  // Outage: the next upload parks after its retries are exhausted.
  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, injectable);
  CloudFaultPolicy policy;
  policy.unavailable = true;
  injectable->SetFaultPolicy(policy);

  ASSERT_TRUE(storage.NewStagingFile(2, &f).ok());
  ASSERT_TRUE(f->Append(payload).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(storage.Install(2, 0, payload.size(), payload.size() - 100).ok());
  storage.WaitForPendingUploads();

  EXPECT_EQ(1u, listener.uploads_completed.load());
  EXPECT_EQ(1u, listener.uploads_failed.load());
  EXPECT_EQ(1u, listener.uploads_parked.load());
  {
    std::lock_guard<std::mutex> l(listener.mu);
    EXPECT_EQ(2u, listener.last_failed.file_number);
    // cloud_retry_attempts = 2 -> two failed attempts before parking.
    EXPECT_EQ(2u, listener.last_failed.retries);
  }
  EXPECT_EQ(1u, stats->GetTickerCount(CLOUD_UPLOADS_PARKED));
  EXPECT_GT(stats->GetTickerCount(CLOUD_UPLOAD_RETRIES), 0u);

  injectable->SetFaultPolicy(CloudFaultPolicy{});
  std::filesystem::remove_all(dir);
}

// Cache eviction listener: pushing more blocks than the budget holds fires
// OnCacheEviction with the aggregate reclaimed bytes, matching the ticker.
TEST(EventListeners, CacheEvictionFires) {
  std::string dir = TestDir("listener_evict");
  auto stats = CreateDBStatistics();
  CountingListener listener;

  PersistentCacheOptions options;
  options.dir = dir;
  options.capacity_bytes = 32 * 1024;
  options.statistics = stats.get();
  options.listeners.push_back(&listener);
  PersistentCache cache(options);

  const std::string block(4 * 1024, 'e');
  for (uint64_t i = 0; i < 32; i++) {
    cache.PutBlock(/*sst=*/1, /*offset=*/i * block.size(), block);
  }

  EXPECT_GT(listener.evictions.load(), 0u);
  EXPECT_GT(listener.evicted_bytes.load(), 0u);
  EXPECT_EQ(listener.evicted_bytes.load(),
            stats->GetTickerCount(PERSISTENT_CACHE_EVICTED_BYTES));
  EXPECT_EQ(cache.GetStats().evicted_bytes, listener.evicted_bytes.load());
  std::filesystem::remove_all(dir);
}

// Acceptance criterion from the issue: a mixed workload on a small RocksMash
// rig with statistics enabled shows non-zero persistent-cache hits, cloud
// GET count, and per-lane compaction bytes.
TEST(MetricsFullStack, MixedWorkloadPopulatesTieredTickers) {
  std::string dir = TestDir("fullstack");
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  model.head_micros = 1;
  model.list_micros = 1;
  model.delete_micros = 1;
  SimClock cloud_clock;
  auto cloud = NewMemObjectStore(&cloud_clock, model);
  auto stats = CreateDBStatistics();
  CountingListener listener;

  RocksMashOptions options;
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.cloud_level_start = 1;  // Everything below L0 is cloud-resident.
  options.write_buffer_size = 16 * 1024;
  options.max_file_size = 32 * 1024;
  options.max_bytes_for_level_base = 64 * 1024;
  // RAM block cache too small to retain data blocks, so repeat reads must
  // come from the persistent cache or the cloud.
  options.block_cache_bytes = 1024;
  options.persistent_cache_bytes = 1 << 20;
  options.statistics = stats.get();
  options.listeners.push_back(&listener);

  std::unique_ptr<RocksMashDB> db;
  ASSERT_TRUE(RocksMashDB::Open(options, &db).ok());

  Random64 rng(7);
  const size_t value_size = 400;
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(500));
    std::string value(value_size, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();
  db->storage()->WaitForPendingUploads();

  // Two read passes over the whole keyspace: the first faults cloud blocks
  // into the persistent cache, the second hits them there.
  std::string value;
  for (int pass = 0; pass < 2; pass++) {
    for (int i = 0; i < 500; i++) {
      std::string key = "key" + std::to_string(i);
      Status s = db->Get(ReadOptions(), key, &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  }

  // The issue's acceptance tickers.
  EXPECT_GT(stats->GetTickerCount(PERSISTENT_CACHE_HIT), 0u);
  EXPECT_GT(stats->GetTickerCount(CLOUD_GET_COUNT), 0u);
  EXPECT_GT(stats->GetTickerCount(COMPACTION_LANE_BYTES_READ), 0u);
  EXPECT_GT(stats->GetTickerCount(COMPACTION_LANE_BYTES_WRITTEN), 0u);

  // Supporting signals along the same paths.
  EXPECT_GT(stats->GetTickerCount(NUM_KEYS_WRITTEN), 0u);
  EXPECT_GT(stats->GetTickerCount(NUM_KEYS_READ), 0u);
  EXPECT_GT(stats->GetTickerCount(WAL_WRITES), 0u);
  EXPECT_GT(stats->GetTickerCount(FLUSH_LANE_BYTES_WRITTEN), 0u);
  EXPECT_GT(stats->GetTickerCount(CLOUD_UPLOADS_COMPLETED), 0u);
  EXPECT_GT(stats->GetTickerCount(CLOUD_GET_BYTES),
            stats->GetTickerCount(CLOUD_GET_COUNT));
  EXPECT_GT(stats->GetHistogramSnapshot(GET_LATENCY_US).Count(), 0u);
  EXPECT_GT(stats->GetHistogramSnapshot(CLOUD_GET_LATENCY_US).Count(), 0u);

  // Listener view agrees with the ticker view.
  EXPECT_GT(listener.flushes.load(), 0u);
  EXPECT_EQ(listener.uploads_completed.load(),
            stats->GetTickerCount(CLOUD_UPLOADS_COMPLETED));

  // The full dump renders and mentions a known ticker.
  std::string text;
  ASSERT_TRUE(db->GetProperty("rocksmash.stats", &text));
  EXPECT_NE(std::string::npos, text.find("cloud.get.count"));

  db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rocksmash
