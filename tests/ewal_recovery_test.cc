// Tests for the eWAL and crash-recovery behaviour (paper claim: fast
// parallel data recovery with no loss of acked writes).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/filename.h"
#include "mash/ewal.h"
#include "mash/recovery.h"
#include "util/mutexlock.h"

namespace rocksmash {
namespace {

class EWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    EWalOptions options;
    options.segments = 4;
    wal_ = NewEWalManager(env_.get(), "/db", options);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<WalManager> wal_;
};

TEST_F(EWalTest, StripesAcrossSegmentFiles) {
  ASSERT_TRUE(wal_->NewLog(1).ok());
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(wal_->AddRecord("record" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(wal_->Sync().ok());
  ASSERT_TRUE(wal_->CloseLog().ok());

  // All four segment files must exist and be non-trivial.
  for (int k = 0; k < 4; k++) {
    EXPECT_TRUE(env_->FileExists(EWalFileName("/db", 1, k))) << k;
  }
}

TEST_F(EWalTest, ReplayReturnsAllRecordsWithShardIds) {
  ASSERT_TRUE(wal_->NewLog(2).ok());
  std::set<std::string> written;
  for (int i = 0; i < 100; i++) {
    std::string r = "record" + std::to_string(i);
    written.insert(r);
    ASSERT_TRUE(wal_->AddRecord(r).ok());
  }
  ASSERT_TRUE(wal_->Sync().ok());
  ASSERT_TRUE(wal_->CloseLog().ok());

  rocksmash::Mutex mu;
  std::set<std::string> replayed;
  std::set<int> shards;
  ASSERT_TRUE(wal_
                  ->Replay(2,
                           [&](const Slice& record, int shard) {
                             rocksmash::MutexLock l(&mu);
                             replayed.insert(record.ToString());
                             shards.insert(shard);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(written, replayed);
  EXPECT_EQ(4u, shards.size());  // All shards participated.
}

TEST_F(EWalTest, ListLogsDeduplicatesSegments) {
  ASSERT_TRUE(wal_->NewLog(3).ok());
  ASSERT_TRUE(wal_->AddRecord("a").ok());
  ASSERT_TRUE(wal_->NewLog(9).ok());
  ASSERT_TRUE(wal_->AddRecord("b").ok());
  ASSERT_TRUE(wal_->CloseLog().ok());

  std::vector<uint64_t> logs;
  ASSERT_TRUE(wal_->ListLogs(&logs).ok());
  ASSERT_EQ(2u, logs.size());
  EXPECT_EQ(3u, logs[0]);
  EXPECT_EQ(9u, logs[1]);
}

TEST_F(EWalTest, RemoveLogDeletesAllSegments) {
  ASSERT_TRUE(wal_->NewLog(4).ok());
  ASSERT_TRUE(wal_->AddRecord("x").ok());
  ASSERT_TRUE(wal_->CloseLog().ok());
  ASSERT_TRUE(wal_->RemoveLog(4).ok());
  for (int k = 0; k < 4; k++) {
    EXPECT_FALSE(env_->FileExists(EWalFileName("/db", 4, k)));
  }
}

TEST_F(EWalTest, CorruptSegmentTruncatesOnlyThatShard) {
  ASSERT_TRUE(wal_->NewLog(5).ok());
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(wal_->AddRecord("record" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(wal_->CloseLog().ok());

  // Corrupt segment 0 near its start.
  std::string seg0 = EWalFileName("/db", 5, 0);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), seg0, &contents).ok());
  contents[8] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(env_.get(), contents, seg0).ok());

  rocksmash::Mutex mu;
  int replayed = 0;
  std::set<int> shards;
  ASSERT_TRUE(wal_
                  ->Replay(5,
                           [&](const Slice&, int shard) {
                             rocksmash::MutexLock l(&mu);
                             replayed++;
                             shards.insert(shard);
                             return Status::OK();
                           })
                  .ok());
  // Segments 1-3 fully replayed (30 records); segment 0 truncated at the
  // corruption.
  EXPECT_GE(replayed, 30);
  EXPECT_LT(replayed, 40);
  EXPECT_TRUE(shards.count(1) && shards.count(2) && shards.count(3));
}

// ---------- Crash recovery through the engine ----------

class RecoveryParam : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    segments_ = GetParam();
    dbname_ = ::testing::TempDir() + "/rocksmash_recovery_" +
              std::to_string(segments_);
    std::filesystem::remove_all(dbname_);
    ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname_).ok());
    if (segments_ > 1) {
      EWalOptions ew;
      ew.segments = segments_;
      wal_ = NewEWalManager(Env::Default(), dbname_, ew);
    } else {
      wal_ = NewClassicWalManager(Env::Default(), dbname_);
    }
    options_.wal_manager = wal_.get();
    options_.write_buffer_size = 32 * 1024 * 1024;  // Avoid flushes.
  }

  void TearDown() override { std::filesystem::remove_all(dbname_); }

  int segments_ = 1;
  std::string dbname_;
  std::unique_ptr<WalManager> wal_;
  DBOptions options_;
};

TEST_P(RecoveryParam, CrashLosesNothingAcked) {
  CrashWorkloadOptions crash;
  crash.wal_bytes = 2 * 1024 * 1024;
  uint64_t keys = 0;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    ASSERT_TRUE(FillWalForCrash(db.get(), crash, &keys).ok());
    // "Crash": drop the DB without flushing the memtable.
  }

  RecoveryMeasurement m = MeasureRecovery(options_, dbname_);
  ASSERT_TRUE(m.status.ok());
  EXPECT_GT(m.stats.records_replayed, 0u);
  EXPECT_GT(m.stats.bytes_replayed, 0u);
  EXPECT_EQ(segments_, m.stats.shards_used);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
  EXPECT_EQ(0u, VerifyRecoveredKeys(db.get(), crash, keys));
}

TEST_P(RecoveryParam, RepeatedCrashRecoverCycles) {
  CrashWorkloadOptions crash;
  crash.wal_bytes = 256 * 1024;
  uint64_t keys = 0;
  for (int cycle = 0; cycle < 3; cycle++) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    crash.seed = 42;  // Same data each cycle; overwrites are fine.
    ASSERT_TRUE(FillWalForCrash(db.get(), crash, &keys).ok());
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
  EXPECT_EQ(0u, VerifyRecoveredKeys(db.get(), crash, keys));
}

INSTANTIATE_TEST_SUITE_P(WalShards, RecoveryParam,
                         ::testing::Values(1, 2, 4, 8));

// Switching WAL implementations between runs must not lose data: each
// manager lists and replays BOTH formats.
class WalSwitchTest : public ::testing::TestWithParam<bool> {};

TEST_P(WalSwitchTest, DataSurvivesWalKindSwitch) {
  const bool classic_first = GetParam();
  std::string dbname = ::testing::TempDir() + "/rocksmash_walswitch_" +
                       (classic_first ? "ce" : "ec");
  std::filesystem::remove_all(dbname);
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());

  auto make_wal = [&](bool classic) -> std::unique_ptr<WalManager> {
    if (classic) return NewClassicWalManager(Env::Default(), dbname);
    EWalOptions ew;
    ew.segments = 4;
    return NewEWalManager(Env::Default(), dbname, ew);
  };

  {
    auto wal = make_wal(classic_first);
    DBOptions options;
    options.wal_manager = wal.get();
    options.write_buffer_size = 8 << 20;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    WriteOptions sync;
    sync.sync = true;
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(
          db->Put(sync, "k" + std::to_string(i), "v" + std::to_string(i))
              .ok());
    }
    // No flush: everything lives in the first-format WAL.
  }

  {
    // Reopen with the OTHER WAL kind.
    auto wal = make_wal(!classic_first);
    DBOptions options;
    options.wal_manager = wal.get();
    options.write_buffer_size = 8 << 20;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    std::string value;
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(
          db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
          << i;
      EXPECT_EQ("v" + std::to_string(i), value);
    }
    // Write more under the new WAL, crash again, and recover once more
    // with the new kind: both generations must be intact.
    WriteOptions sync;
    sync.sync = true;
    for (int i = 300; i < 400; i++) {
      ASSERT_TRUE(
          db->Put(sync, "k" + std::to_string(i), "v" + std::to_string(i))
              .ok());
    }
  }

  {
    auto wal = make_wal(!classic_first);
    DBOptions options;
    options.wal_manager = wal.get();
    options.write_buffer_size = 8 << 20;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    std::string value;
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(
          db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
          << i;
    }
  }
  std::filesystem::remove_all(dbname);
}

INSTANTIATE_TEST_SUITE_P(Directions, WalSwitchTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param
                                      ? std::string("ClassicToEWal")
                                      : std::string("EWalToClassic");
                         });

TEST(EWalEngineTest, SequencesConsistentAfterParallelReplay) {
  // Writes interleaved with overwrites: parallel out-of-order replay must
  // still make the *latest* write win for every key.
  std::string dbname = ::testing::TempDir() + "/rocksmash_ewal_seq";
  std::filesystem::remove_all(dbname);
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());

  EWalOptions ew;
  ew.segments = 4;
  auto wal = NewEWalManager(Env::Default(), dbname, ew);
  DBOptions options;
  options.wal_manager = wal.get();
  options.write_buffer_size = 32 * 1024 * 1024;

  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    // Each key written 5 times; versions land in different segments.
    for (int version = 0; version < 5; version++) {
      for (int k = 0; k < 200; k++) {
        ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(k),
                            "v" + std::to_string(version))
                        .ok());
      }
    }
    WriteOptions sync;
    sync.sync = true;
    ASSERT_TRUE(db->Put(sync, "fence", "done").ok());
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string value;
  for (int k = 0; k < 200; k++) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(k), &value).ok());
    EXPECT_EQ("v4", value) << k;
  }
  db.reset();
  std::filesystem::remove_all(dbname);
}

}  // namespace
}  // namespace rocksmash
