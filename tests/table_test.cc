// Tests for the SSTable layer: blocks, bloom filters, filter blocks,
// builder/reader round trips, block cache interaction, merging iterator.
#include <gtest/gtest.h>

#include <map>

#include "env/env.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/bloom.h"
#include "table/filter_block.h"
#include "table/merger.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "util/random.h"

namespace rocksmash {
namespace {

// ---------- Block ----------

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder(16);
  Slice raw = builder.Finish();
  BlockContents contents;
  contents.data = raw.ToString();
  Block block(std::move(contents));
  std::unique_ptr<Iterator> it(
      block.NewIterator(BytewiseComparator::Instance()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, RoundTripWithRestartCompression) {
  std::map<std::string, std::string> model;
  BlockBuilder builder(4);  // Small restart interval exercises prefixes.
  for (int i = 0; i < 100; i++) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    builder.Add(buf, "value" + std::to_string(i));
    model[buf] = "value" + std::to_string(i);
  }
  BlockContents contents;
  contents.data = builder.Finish().ToString();
  Block block(std::move(contents));

  std::unique_ptr<Iterator> it(
      block.NewIterator(BytewiseComparator::Instance()));
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(expect->first, it->key().ToString());
    EXPECT_EQ(expect->second, it->value().ToString());
  }
  EXPECT_EQ(expect, model.end());
}

TEST(BlockTest, SeekSemantics) {
  BlockBuilder builder(4);
  for (int i = 0; i < 100; i += 2) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    builder.Add(buf, "v");
  }
  BlockContents contents;
  contents.data = builder.Finish().ToString();
  Block block(std::move(contents));
  std::unique_ptr<Iterator> it(
      block.NewIterator(BytewiseComparator::Instance()));

  it->Seek("key000051");  // Odd: next even key.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key000052", it->key().ToString());

  it->Seek("key000000");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key000000", it->key().ToString());

  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, BackwardIteration) {
  BlockBuilder builder(4);
  for (char c = 'a'; c <= 'e'; c++) {
    builder.Add(std::string(1, c), "v");
  }
  BlockContents contents;
  contents.data = builder.Finish().ToString();
  Block block(std::move(contents));
  std::unique_ptr<Iterator> it(
      block.NewIterator(BytewiseComparator::Instance()));
  it->SeekToLast();
  std::string got;
  while (it->Valid()) {
    got += it->key().ToString();
    it->Prev();
  }
  EXPECT_EQ("edcba", got);
}

// ---------- Bloom ----------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_strings;
  std::vector<Slice> keys;
  for (int i = 0; i < 1000; i++) {
    key_strings.push_back("key" + std::to_string(i));
  }
  for (const auto& s : key_strings) keys.emplace_back(s);
  std::string filter;
  policy.CreateFilter(keys.data(), static_cast<int>(keys.size()), &filter);
  for (const auto& s : key_strings) {
    EXPECT_TRUE(policy.KeyMayMatch(s, filter)) << s;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_strings;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    key_strings.push_back("key" + std::to_string(i));
  }
  for (const auto& s : key_strings) keys.emplace_back(s);
  std::string filter;
  policy.CreateFilter(keys.data(), static_cast<int>(keys.size()), &filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (policy.KeyMayMatch("other" + std::to_string(i), filter)) {
      false_positives++;
    }
  }
  // 10 bits/key should give ~1%; allow generous slack.
  EXPECT_LT(false_positives, 300);
}

TEST(BloomTest, EmptyFilterMatchesNothing) {
  BloomFilterPolicy policy(10);
  std::string filter;
  EXPECT_FALSE(policy.KeyMayMatch("anything", filter));
}

// ---------- Filter block ----------

TEST(FilterBlockTest, SingleChunk) {
  const FilterPolicy* policy = NewBloomFilterPolicy(10);
  FilterBlockBuilder builder(policy);
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  Slice block = builder.Finish();
  FilterBlockReader reader(policy, block);
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "bar"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "missing"));
}

TEST(FilterBlockTest, MultipleChunks) {
  const FilterPolicy* policy = NewBloomFilterPolicy(10);
  FilterBlockBuilder builder(policy);
  builder.StartBlock(0);
  builder.AddKey("a0");
  builder.StartBlock(3000);
  builder.AddKey("a3000");
  builder.StartBlock(9000);
  builder.AddKey("a9000");
  Slice block = builder.Finish();
  FilterBlockReader reader(policy, block);
  EXPECT_TRUE(reader.KeyMayMatch(0, "a0"));
  EXPECT_TRUE(reader.KeyMayMatch(3000, "a3000"));
  EXPECT_TRUE(reader.KeyMayMatch(9000, "a9000"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "a9000"));
}

// ---------- Table builder/reader ----------

class TableRoundTrip : public ::testing::Test {
 protected:
  void Build(int num_entries, size_t block_size = 1024,
             const FilterPolicy* filter = nullptr) {
    env_ = NewMemEnv();
    options_.block_size = block_size;
    options_.filter_policy = filter;

    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/table", &file).ok());
    TableBuilder builder(options_, file.get());
    for (int i = 0; i < num_entries; i++) {
      char buf[32];
      snprintf(buf, sizeof(buf), "key%08d", i);
      std::string value = "value" + std::to_string(i);
      builder.Add(buf, value);
      model_[buf] = value;
    }
    ASSERT_TRUE(builder.Finish().ok());
    metadata_offset_ = builder.MetadataOffset();
    file_size_ = builder.FileSize();
    EXPECT_EQ(static_cast<uint64_t>(num_entries), builder.NumEntries());
    ASSERT_TRUE(file->Close().ok());

    std::unique_ptr<RandomAccessFile> rfile;
    ASSERT_TRUE(env_->NewRandomAccessFile("/table", &rfile).ok());
    rfile_ = std::move(rfile);
    auto source = std::make_unique<FileBlockSource>(rfile_.get());
    ASSERT_TRUE(Table::Open(options_, std::move(source), file_size_,
                            cache_.get(), 1, &table_)
                    .ok());
  }

  TableOptions options_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<RandomAccessFile> rfile_;
  std::unique_ptr<Cache> cache_;
  std::unique_ptr<Table> table_;
  std::map<std::string, std::string> model_;
  uint64_t metadata_offset_ = 0;
  uint64_t file_size_ = 0;
};

TEST_F(TableRoundTrip, IterateAll) {
  Build(1000);
  std::unique_ptr<Iterator> it(table_->NewIterator());
  auto expect = model_.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model_.end());
    EXPECT_EQ(expect->first, it->key().ToString());
    EXPECT_EQ(expect->second, it->value().ToString());
  }
  EXPECT_EQ(expect, model_.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(TableRoundTrip, SeekWithinAndBeyond) {
  Build(1000);
  std::unique_ptr<Iterator> it(table_->NewIterator());
  it->Seek("key00000500");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key00000500", it->key().ToString());
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST_F(TableRoundTrip, MetadataOffsetCoversTail) {
  Build(1000);
  EXPECT_GT(metadata_offset_, 0u);
  EXPECT_LT(metadata_offset_, file_size_);
  // Footer must start inside [metadata_offset, file_size).
  EXPECT_GE(file_size_ - metadata_offset_, Footer::kEncodedLength);
}

TEST_F(TableRoundTrip, WithBlockCache) {
  cache_ = NewLRUCache(64 * 1024);
  Build(1000);
  // Two passes: second should hit the cache.
  for (int pass = 0; pass < 2; pass++) {
    std::unique_ptr<Iterator> it(table_->NewIterator());
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
    EXPECT_EQ(1000, n);
  }
  auto stats = cache_->GetStats();
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(TableRoundTrip, WithFilterPolicy) {
  Build(1000, 1024, NewBloomFilterPolicy(10));
  struct Result {
    bool found = false;
    std::string value;
  } result;
  auto handler = [](void* arg, const Slice& k, const Slice& v) {
    auto* r = reinterpret_cast<Result*>(arg);
    if (k.starts_with("key00000042")) {
      r->found = true;
      r->value = v.ToString();
    }
  };
  ASSERT_TRUE(table_->InternalGet("key00000042", &result, handler).ok());
  EXPECT_TRUE(result.found);
  EXPECT_EQ("value42", result.value);
}

TEST_F(TableRoundTrip, CorruptionDetected) {
  Build(100);
  // Flip a byte in the middle of the file; reads of that block must fail.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/table", &contents).ok());
  contents[contents.size() / 4] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/table").ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env_->NewRandomAccessFile("/table", &rfile).ok());
  auto source = std::make_unique<FileBlockSource>(rfile.get());
  std::unique_ptr<Table> table;
  Status open = Table::Open(options_, std::move(source), file_size_, nullptr,
                            1, &table);
  if (open.ok()) {
    std::unique_ptr<Iterator> it(table->NewIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
    }
    EXPECT_FALSE(it->status().ok());
  }
  rfile_ = std::move(rfile);  // Keep alive for teardown symmetry.
}

TEST_F(TableRoundTrip, TruncatedFileFailsToOpen) {
  Build(100);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/table", &contents).ok());
  contents.resize(contents.size() / 2);
  ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/table2").ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env_->NewRandomAccessFile("/table2", &rfile).ok());
  auto source = std::make_unique<FileBlockSource>(rfile.get());
  std::unique_ptr<Table> table;
  EXPECT_FALSE(Table::Open(options_, std::move(source), contents.size(),
                           nullptr, 1, &table)
                   .ok());
}

// ---------- Merging iterator ----------

class VectorIterator final : public Iterator {
 public:
  explicit VectorIterator(std::vector<std::pair<std::string, std::string>> kv)
      : kv_(std::move(kv)), index_(kv_.size()) {}

  bool Valid() const override { return index_ < kv_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = kv_.empty() ? 0 : kv_.size() - 1; }
  void Seek(const Slice& target) override {
    index_ = 0;
    while (index_ < kv_.size() &&
           Slice(kv_[index_].first).compare(target) < 0) {
      index_++;
    }
  }
  void Next() override { index_++; }
  void Prev() override {
    if (index_ == 0) {
      index_ = kv_.size();
    } else {
      index_--;
    }
  }
  Slice key() const override { return kv_[index_].first; }
  Slice value() const override { return kv_[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  size_t index_;
};

TEST(MergerTest, MergesSorted) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {"a", "1"}, {"d", "4"}, {"f", "6"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {"b", "2"}, {"c", "3"}, {"e", "5"}}));
  std::unique_ptr<Iterator> merged = NewMergingIterator(
      BytewiseComparator::Instance(), std::move(children));
  std::string keys;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    keys += merged->key().ToString();
  }
  EXPECT_EQ("abcdef", keys);
}

TEST(MergerTest, BackwardMerge) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"a", "1"},
                                                       {"c", "3"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"b", "2"},
                                                       {"d", "4"}}));
  std::unique_ptr<Iterator> merged = NewMergingIterator(
      BytewiseComparator::Instance(), std::move(children));
  std::string keys;
  for (merged->SeekToLast(); merged->Valid(); merged->Prev()) {
    keys += merged->key().ToString();
  }
  EXPECT_EQ("dcba", keys);
}

TEST(MergerTest, DirectionSwitch) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"a", "1"},
                                                       {"c", "3"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"b", "2"},
                                                       {"d", "4"}}));
  std::unique_ptr<Iterator> merged = NewMergingIterator(
      BytewiseComparator::Instance(), std::move(children));
  merged->Seek("b");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("b", merged->key().ToString());
  merged->Next();
  EXPECT_EQ("c", merged->key().ToString());
  merged->Prev();
  EXPECT_EQ("b", merged->key().ToString());
  merged->Prev();
  EXPECT_EQ("a", merged->key().ToString());
}

TEST(MergerTest, EmptyAndSingle) {
  std::unique_ptr<Iterator> empty =
      NewMergingIterator(BytewiseComparator::Instance(), {});
  empty->SeekToFirst();
  EXPECT_FALSE(empty->Valid());

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"x", "1"}}));
  std::unique_ptr<Iterator> one = NewMergingIterator(
      BytewiseComparator::Instance(), std::move(children));
  one->SeekToFirst();
  ASSERT_TRUE(one->Valid());
  EXPECT_EQ("x", one->key().ToString());
}

}  // namespace
}  // namespace rocksmash
