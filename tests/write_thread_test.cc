// Tests for the two-stage write pipeline (leader-elected WAL stage +
// parallel memtable apply, src/lsm/db_impl.cc). The cases here pin the
// protocol-level guarantees: group formation under concurrent writers,
// result equivalence between the concurrent and serial apply paths, error
// propagation from a failed WAL sync, and all-or-nothing batch visibility
// through snapshots while the parallel apply stage is racing.
//
// Like concurrency_stress_test.cc, this suite is designed to run under
// both ThreadSanitizer and AddressSanitizer (CI runs it under each); the
// functional assertions keep it meaningful without a sanitizer too.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/wal.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string TestDir(const char* suffix) {
  return ::testing::TempDir() + "/rocksmash_write_thread_" + suffix;
}

std::string KeyOf(int writer, uint64_t i) {
  char buf[40];
  snprintf(buf, sizeof(buf), "w%02d-key-%08llu", writer,
           static_cast<unsigned long long>(i));
  return buf;
}

// Deterministic value per key so the final state is independent of the
// order in which concurrent writers were sequenced.
std::string ValueOf(int writer, uint64_t i) {
  return "v-" + std::to_string(writer) + "-" + std::to_string(i * 2654435761u);
}

// ---------- Group formation ----------

// Every Write() call joins exactly one group: the cumulative group-size
// ticker must equal the number of Write() calls, and with many concurrent
// sync writers at least some groups must contain more than one writer.
TEST(WriteThreadTest, GroupFormationAccounting) {
  const std::string dbname = TestDir("groups");
  std::filesystem::remove_all(dbname);

  auto stats = CreateDBStatistics();
  DBOptions options;
  options.create_if_missing = true;
  options.enable_pipelined_write = true;
  options.allow_concurrent_memtable_write = true;
  options.statistics = stats.get();

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kWriters = 8;
  constexpr uint64_t kWritesPerThread = 200;
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&db, &errors, w] {
      // Sync writes force every group through the WAL sync stage, which is
      // where followers pile up behind the leader.
      WriteOptions wo;
      wo.sync = true;
      for (uint64_t i = 0; i < kWritesPerThread; i++) {
        if (!db->Put(wo, KeyOf(w, i), ValueOf(w, i)).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(0u, errors.load());

  const uint64_t total_writes = kWriters * kWritesPerThread;
  const uint64_t groups = stats->GetTickerCount(WRITE_GROUPS);
  const uint64_t group_size = stats->GetTickerCount(WRITE_GROUP_SIZE);
  EXPECT_EQ(total_writes, group_size);
  EXPECT_GE(groups, 1u);
  EXPECT_LE(groups, total_writes);
  // With 8 writers issuing sync writes concurrently, serializing every
  // write into its own group would mean grouping never happened at all.
  EXPECT_LT(groups, total_writes);
  EXPECT_GT(stats->GetTickerCount(WRITE_PIPELINED_GROUPS), 0u);

  // Everything is readable afterwards.
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(w, 0), &value).ok());
    EXPECT_EQ(ValueOf(w, 0), value);
  }
}

// ---------- Concurrent vs serial equivalence ----------

// The same multi-writer workload lands the same logical state whether the
// apply stage runs concurrently or serially. Values are a function of the
// key alone, so the comparison is order-independent.
TEST(WriteThreadTest, ConcurrentAndSerialApplyAgree) {
  constexpr int kWriters = 6;
  constexpr uint64_t kKeysPerWriter = 400;
  constexpr int kBatchKeys = 16;

  auto run_workload = [&](const std::string& dbname, bool concurrent) {
    std::filesystem::remove_all(dbname);
    DBOptions options;
    options.create_if_missing = true;
    options.enable_pipelined_write = concurrent;
    options.allow_concurrent_memtable_write = concurrent;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

    std::vector<std::thread> threads;
    std::atomic<uint64_t> errors{0};
    for (int w = 0; w < kWriters; w++) {
      threads.emplace_back([&db, &errors, w] {
        WriteOptions wo;
        uint64_t i = 0;
        while (i < kKeysPerWriter) {
          WriteBatch batch;
          for (int b = 0; b < kBatchKeys && i < kKeysPerWriter; b++, i++) {
            batch.Put(KeyOf(w, i), ValueOf(w, i));
          }
          if (!db->Write(wo, &batch).ok()) errors.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(0u, errors.load());

    // Read back every key and count the total via a full scan.
    std::string value;
    for (int w = 0; w < kWriters; w++) {
      for (uint64_t i = 0; i < kKeysPerWriter; i++) {
        ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(w, i), &value).ok());
        EXPECT_EQ(ValueOf(w, i), value);
      }
    }
    uint64_t scanned = 0;
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) scanned++;
    EXPECT_EQ(kWriters * kKeysPerWriter, scanned);
  };

  run_workload(TestDir("eq_concurrent"), /*concurrent=*/true);
  run_workload(TestDir("eq_serial"), /*concurrent=*/false);
}

// ---------- WAL sync failure ----------

// Delegating WAL whose Sync() starts failing on command.
class FailingSyncWal : public WalManager {
 public:
  explicit FailingSyncWal(std::unique_ptr<WalManager> base)
      : base_(std::move(base)) {}

  Status NewLog(uint64_t number) override { return base_->NewLog(number); }
  Status AddRecord(const Slice& record) override {
    return base_->AddRecord(record);
  }
  Status Sync() override {
    if (fail_syncs_.load(std::memory_order_acquire)) {
      return Status::IOError("injected sync failure");
    }
    return base_->Sync();
  }
  Status CloseLog() override { return base_->CloseLog(); }
  Status ListLogs(std::vector<uint64_t>* numbers) override {
    return base_->ListLogs(numbers);
  }
  Status RemoveLog(uint64_t number) override {
    return base_->RemoveLog(number);
  }
  Status Replay(
      uint64_t number,
      const std::function<Status(const Slice& record, int shard)>& apply,
      ReplayTelemetry* telemetry) override {
    return base_->Replay(number, apply, telemetry);
  }
  int MaxShards() const override { return base_->MaxShards(); }

  void SetFailSyncs(bool fail) {
    fail_syncs_.store(fail, std::memory_order_release);
  }

 private:
  std::unique_ptr<WalManager> base_;
  std::atomic<bool> fail_syncs_{false};
};

// A failed group sync must poison the DB (bg_error_): the failing write
// reports the error and every later write is refused rather than risking
// a WAL/memtable divergence.
TEST(WriteThreadTest, SyncFailurePoisonsWrites) {
  const std::string dbname = TestDir("sync_fail");
  std::filesystem::remove_all(dbname);

  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirRecursively(dbname).ok());
  auto wal = std::make_unique<FailingSyncWal>(NewClassicWalManager(env, dbname));
  FailingSyncWal* wal_ptr = wal.get();

  DBOptions options;
  options.create_if_missing = true;
  options.enable_pipelined_write = true;
  options.allow_concurrent_memtable_write = true;
  options.wal_manager = wal_ptr;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db->Put(sync_wo, "healthy", "before").ok());

  wal_ptr->SetFailSyncs(true);
  Status s = db->Put(sync_wo, "doomed", "value");
  ASSERT_FALSE(s.ok());

  // The failure is sticky: even non-sync writes are refused afterwards.
  wal_ptr->SetFailSyncs(false);
  EXPECT_FALSE(db->Put(WriteOptions(), "after", "value").ok());
  EXPECT_FALSE(db->Put(sync_wo, "after-sync", "value").ok());

  // Reads of pre-failure state still work.
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "healthy", &value).ok());
  EXPECT_EQ("before", value);

  // The sticky error also surfaces through maintenance entry points that
  // used to swallow it: manual compaction reports instead of no-opping.
  EXPECT_FALSE(db->CompactRange(nullptr, nullptr).ok());

  db.reset();
}

// DB::Close must surface a WAL sync failure. Before Close existed the final
// sync ran in the destructor and its status was dropped, so acknowledged
// (unsynced) writes could vanish on a crash-free shutdown with no caller
// ever hearing about it.
TEST(WriteThreadTest, CloseSurfacesWalSyncFailure) {
  const std::string dbname = TestDir("close_sync_fail");
  std::filesystem::remove_all(dbname);

  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirRecursively(dbname).ok());
  auto wal =
      std::make_unique<FailingSyncWal>(NewClassicWalManager(env, dbname));
  FailingSyncWal* wal_ptr = wal.get();

  DBOptions options;
  options.create_if_missing = true;
  options.wal_manager = wal_ptr;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  // Unsynced WAL data that the closing sync must make durable.
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());

  wal_ptr->SetFailSyncs(true);
  Status close_status = db->Close();
  EXPECT_TRUE(close_status.IsIOError()) << close_status.ToString();

  // Idempotent: a repeat call reports the recorded outcome without
  // re-running teardown, and the destructor tolerates a closed DB.
  EXPECT_TRUE(db->Close().IsIOError());
  db.reset();
}

TEST(WriteThreadTest, CloseIsCleanAndIdempotentOnSuccess) {
  const std::string dbname = TestDir("close_clean");
  std::filesystem::remove_all(dbname);

  DBOptions options;
  options.create_if_missing = true;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  EXPECT_TRUE(db->Close().ok());
  EXPECT_TRUE(db->Close().ok());
  db.reset();

  // The closed store reopens with the synced write intact.
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("v", value);
}

// ---------- Sequence visibility under concurrent snapshots ----------

// Each writer overwrites its own K-key batch with a per-round value while
// readers take snapshots and read all K keys through them. LastSequence is
// published only after a group's every sub-batch has applied, so a
// snapshot must always see a batch entirely at one round — never a mix.
TEST(WriteThreadTest, SnapshotsNeverSeePartialBatches) {
  const std::string dbname = TestDir("snapshots");
  std::filesystem::remove_all(dbname);

  DBOptions options;
  options.create_if_missing = true;
  options.enable_pipelined_write = true;
  options.allow_concurrent_memtable_write = true;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kWriters = 4;
  constexpr int kBatchKeys = 8;
  constexpr int kRounds = 300;

  auto batch_key = [](int writer, int k) {
    char buf[32];
    snprintf(buf, sizeof(buf), "batch%02d.key%02d", writer, k);
    return std::string(buf);
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_batches{0};
  std::atomic<uint64_t> write_errors{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      WriteOptions wo;
      for (int r = 1; r <= kRounds; r++) {
        WriteBatch batch;
        const std::string value = "round-" + std::to_string(r);
        for (int k = 0; k < kBatchKeys; k++) {
          batch.Put(batch_key(w, k), value);
        }
        if (!db->Write(wo, &batch).ok()) write_errors.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&, r] {
      Random64 rng(7331 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        const int w = static_cast<int>(rng.Uniform(kWriters));
        const Snapshot* snap = db->GetSnapshot();
        ReadOptions ro;
        ro.snapshot = snap;
        std::string first, value;
        bool mixed = false;
        int found = 0, absent = 0;
        for (int k = 0; k < kBatchKeys; k++) {
          Status s = db->Get(ro, batch_key(w, k), &value);
          if (s.IsNotFound()) {
            absent++;
            continue;
          }
          ASSERT_TRUE(s.ok());
          if (found == 0) {
            first = value;
          } else if (value != first) {
            mixed = true;
          }
          found++;
        }
        // Consistent views: all keys absent (before the first round) or all
        // present at a single round's value.
        if (mixed || (found > 0 && absent > 0)) torn_batches.fetch_add(1);
        db->ReleaseSnapshot(snap);
      }
    });
  }

  for (int w = 0; w < kWriters; w++) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); t++) threads[t].join();

  EXPECT_EQ(0u, write_errors.load());
  EXPECT_EQ(0u, torn_batches.load());

  // Final state: every batch fully at the last round.
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (int k = 0; k < kBatchKeys; k++) {
      ASSERT_TRUE(db->Get(ReadOptions(), batch_key(w, k), &value).ok());
      EXPECT_EQ("round-" + std::to_string(kRounds), value);
    }
  }
}

}  // namespace
}  // namespace rocksmash
