// Tests for the RocksMash core: metadata store, persistent cache (both
// layouts), tiered placement, and the RocksMashDB facade.
#include <gtest/gtest.h>

#include <filesystem>

#include "cloud/object_store.h"
#include "env/env.h"
#include "lsm/filename.h"
#include "mash/metadata_store.h"
#include "mash/persistent_cache.h"
#include "mash/placement.h"
#include "mash/rocksmash_db.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "util/clock.h"

namespace rocksmash {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/rocksmash_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------- MetadataStore ----------

TEST(MetadataStoreTest, AdmitAndRead) {
  std::string dir = TestDir("meta");
  MetadataStore store(Env::Default(), dir);

  const std::string tail = "FILTERINDEXFOOTER";
  ASSERT_TRUE(store.Admit(7, 1000, 1000 + tail.size(), tail).ok());

  std::string out;
  ASSERT_TRUE(store.Read(7, 1000, tail.size(), &out));
  EXPECT_EQ(tail, out);
  ASSERT_TRUE(store.Read(7, 1006, 5, &out));
  EXPECT_EQ("INDEX", out);
  EXPECT_FALSE(store.Read(7, 500, 10, &out));  // Below metadata offset.
  EXPECT_FALSE(store.Read(8, 1000, 4, &out));  // Unknown SST.

  auto stats = store.GetStats();
  EXPECT_EQ(1u, stats.slabs);
  EXPECT_EQ(tail.size(), stats.bytes);
  EXPECT_GE(stats.hits, 2u);
  std::filesystem::remove_all(dir);
}

TEST(MetadataStoreTest, SurvivesRestart) {
  std::string dir = TestDir("meta_restart");
  const std::string tail = "PERSISTME";
  {
    MetadataStore store(Env::Default(), dir);
    ASSERT_TRUE(store.Admit(3, 42, 42 + tail.size(), tail).ok());
  }
  {
    MetadataStore store(Env::Default(), dir);
    std::string out;
    ASSERT_TRUE(store.Read(3, 42, tail.size(), &out));
    EXPECT_EQ(tail, out);
    uint64_t mo, fs;
    ASSERT_TRUE(store.GetInfo(3, &mo, &fs));
    EXPECT_EQ(42u, mo);
  }
  std::filesystem::remove_all(dir);
}

TEST(MetadataStoreTest, InvalidateRemovesSlab) {
  std::string dir = TestDir("meta_inval");
  MetadataStore store(Env::Default(), dir);
  ASSERT_TRUE(store.Admit(9, 0, 4, "tail").ok());
  store.Invalidate(9);
  std::string out;
  EXPECT_FALSE(store.Read(9, 0, 4, &out));
  EXPECT_EQ(0u, store.GetStats().bytes);
  std::filesystem::remove_all(dir);
}

TEST(MetadataStoreTest, CorruptSlabRejectedOnLoad) {
  std::string dir = TestDir("meta_corrupt");
  {
    MetadataStore store(Env::Default(), dir);
    ASSERT_TRUE(store.Admit(5, 0, 8, "metadata").ok());
  }
  std::string path = dir + "/5.meta";
  std::string contents;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &contents).ok());
  contents[contents.size() / 2] ^= 0x10;
  ASSERT_TRUE(WriteStringToFile(Env::Default(), contents, path).ok());
  {
    MetadataStore store(Env::Default(), dir);
    std::string out;
    EXPECT_FALSE(store.Read(5, 0, 8, &out));
  }
  std::filesystem::remove_all(dir);
}

// ---------- PersistentCache (both layouts) ----------

class PersistentCacheLayouts : public ::testing::TestWithParam<CacheLayout> {
 protected:
  void SetUp() override {
    dir_ = TestDir(GetParam() == CacheLayout::kCompactionAware
                       ? "pcache_extent"
                       : "pcache_log");
    options_.dir = dir_;
    options_.capacity_bytes = 64 * 1024;
    options_.layout = GetParam();
    options_.log_file_bytes = 16 * 1024;
    cache_ = std::make_unique<PersistentCache>(options_);
  }

  void TearDown() override {
    cache_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string scratch_;
  PersistentCacheOptions options_;
  std::unique_ptr<PersistentCache> cache_;
};

TEST_P(PersistentCacheLayouts, PutGetBlock) {
  const std::string block(1000, 'b');
  EXPECT_FALSE(cache_->GetBlock(1, 0, &scratch_));
  cache_->PutBlock(1, 0, block);
  ASSERT_TRUE(cache_->GetBlock(1, 0, &scratch_));
  EXPECT_EQ(block, scratch_);

  auto stats = cache_->GetStats();
  EXPECT_EQ(1u, stats.admissions);
  EXPECT_EQ(1u, stats.hits);
  EXPECT_EQ(1u, stats.misses);
  EXPECT_EQ(1000u, stats.data_bytes);
}

TEST_P(PersistentCacheLayouts, DistinctOffsetsDistinctBlocks) {
  cache_->PutBlock(1, 0, "block-at-0");
  cache_->PutBlock(1, 4096, "block-at-4096");
  cache_->PutBlock(2, 0, "other-sst");
  ASSERT_TRUE(cache_->GetBlock(1, 0, &scratch_));
  EXPECT_EQ("block-at-0", scratch_);
  ASSERT_TRUE(cache_->GetBlock(1, 4096, &scratch_));
  EXPECT_EQ("block-at-4096", scratch_);
  ASSERT_TRUE(cache_->GetBlock(2, 0, &scratch_));
  EXPECT_EQ("other-sst", scratch_);
}

TEST_P(PersistentCacheLayouts, DuplicatePutIgnored) {
  cache_->PutBlock(1, 0, "first");
  cache_->PutBlock(1, 0, "second");
  ASSERT_TRUE(cache_->GetBlock(1, 0, &scratch_));
  EXPECT_EQ("first", scratch_);
  EXPECT_EQ(1u, cache_->GetStats().admissions);
}

TEST_P(PersistentCacheLayouts, CapacityEnforcedByEviction) {
  // 64 KiB budget; insert 10 SSTs x 16 KiB each.
  const std::string block(16 * 1024, 'x');
  for (uint64_t sst = 0; sst < 10; sst++) {
    cache_->PutBlock(sst, 0, block);
  }
  auto stats = cache_->GetStats();
  EXPECT_LE(stats.data_bytes, options_.capacity_bytes);
  EXPECT_GT(stats.evicted_bytes, 0u);
  // The most recently inserted survives.
  EXPECT_TRUE(cache_->GetBlock(9, 0, &scratch_));
}

TEST_P(PersistentCacheLayouts, InvalidationDropsAllBlocksOfSst) {
  cache_->PutBlock(4, 0, "a");
  cache_->PutBlock(4, 100, "b");
  cache_->PutBlock(5, 0, "keep");
  cache_->Invalidate(4);
  EXPECT_FALSE(cache_->GetBlock(4, 0, &scratch_));
  EXPECT_FALSE(cache_->GetBlock(4, 100, &scratch_));
  EXPECT_TRUE(cache_->GetBlock(5, 0, &scratch_));
  EXPECT_EQ(1u, cache_->GetStats().invalidations);
}

TEST_P(PersistentCacheLayouts, MetadataRegionIntegration) {
  ASSERT_TRUE(cache_->AdmitMetadata(11, 500, 510, "0123456789").ok());
  ASSERT_TRUE(cache_->ReadMetadata(11, 502, 3, &scratch_));
  EXPECT_EQ("234", scratch_);
  uint64_t mo, fs;
  ASSERT_TRUE(cache_->GetMetadataInfo(11, &mo, &fs));
  EXPECT_EQ(500u, mo);
  EXPECT_EQ(510u, fs);
  cache_->Invalidate(11);
  EXPECT_FALSE(cache_->ReadMetadata(11, 502, 3, &scratch_));
}

INSTANTIATE_TEST_SUITE_P(Layouts, PersistentCacheLayouts,
                         ::testing::Values(CacheLayout::kCompactionAware,
                                           CacheLayout::kGlobalLog));

TEST(PersistentCacheGcTest, SingleHotSstDiskFootprintBounded) {
  // Regression: a single SST bigger than the budget, cycling admit/evict,
  // must not grow its extent file without bound.
  std::string dir = TestDir("pcache_single_sst");
  PersistentCacheOptions options;
  options.dir = dir;
  options.capacity_bytes = 64 * 1024;
  options.layout = CacheLayout::kCompactionAware;
  PersistentCache cache(options);

  const std::string block(8 * 1024, 'h');
  // 200 distinct blocks of one SST = 1.6 MiB admitted through a 64 KiB
  // budget; cycle twice.
  std::string out;
  for (int round = 0; round < 2; round++) {
    for (uint64_t off = 0; off < 200 * 16384; off += 16384) {
      if (!cache.GetBlock(1, off, &out)) {
        cache.PutBlock(1, off, block);
      }
    }
  }
  auto stats = cache.GetStats();
  EXPECT_LE(stats.data_bytes, options.capacity_bytes);
  EXPECT_LE(stats.disk_bytes, 2 * options.capacity_bytes + block.size());
  std::filesystem::remove_all(dir);
}

TEST(PersistentCacheGcTest, GlobalLogGarbageCollects) {
  std::string dir = TestDir("pcache_gc");
  PersistentCacheOptions options;
  options.dir = dir;
  options.capacity_bytes = 1 << 20;
  options.layout = CacheLayout::kGlobalLog;
  options.log_file_bytes = 8 * 1024;
  options.gc_live_fraction = 0.9;
  PersistentCache cache(options);

  // Fill several log files with blocks from two SSTs interleaved.
  const std::string block(1024, 'z');
  for (uint64_t i = 0; i < 32; i++) {
    cache.PutBlock(/*sst=*/i % 2, /*offset=*/i * 2048, block);
  }
  // Invalidate one SST: half of every log's bytes become dead, under the
  // 0.9 live threshold, so sealed logs get rewritten.
  cache.Invalidate(0);
  auto stats = cache.GetStats();
  EXPECT_GT(stats.gc_runs, 0u);
  // Survivor blocks must still be readable after GC moved them.
  std::string out;
  for (uint64_t i = 1; i < 32; i += 2) {
    EXPECT_TRUE(cache.GetBlock(1, i * 2048, &out)) << i;
    EXPECT_EQ(block, out);
  }
  std::filesystem::remove_all(dir);
}

TEST(PersistentCacheGcTest, CompactionAwareInvalidationIsOneFileDelete) {
  std::string dir = TestDir("pcache_o1");
  PersistentCacheOptions options;
  options.dir = dir;
  options.capacity_bytes = 1 << 20;
  options.layout = CacheLayout::kCompactionAware;
  PersistentCache cache(options);

  const std::string block(1024, 'q');
  for (uint64_t off = 0; off < 64 * 1024; off += 2048) {
    cache.PutBlock(7, off, block);
  }
  cache.Invalidate(7);
  auto stats = cache.GetStats();
  EXPECT_EQ(0u, stats.gc_runs);        // Never needs GC.
  EXPECT_EQ(0u, stats.data_bytes);     // Fully reclaimed immediately.
  EXPECT_EQ(0u, stats.disk_bytes);
  std::filesystem::remove_all(dir);
}

// ---------- TieredTableStorage ----------

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestDir("placement");
    ASSERT_TRUE(Env::Default()->CreateDirRecursively(dir_).ok());
    CloudLatencyModel model;
    model.jitter_micros = 0;
    cloud_ = NewMemObjectStore(&clock_, model);

    PersistentCacheOptions pc;
    pc.dir = dir_ + "/pcache";
    pcache_ = std::make_unique<PersistentCache>(pc);

    options_.local_dir = dir_;
    options_.cloud = cloud_.get();
    options_.cloud_level_start = 2;
    options_.persistent_cache = pcache_.get();
    storage_ = std::make_unique<TieredTableStorage>(options_);
  }

  void TearDown() override {
    storage_.reset();
    pcache_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Builds a tiny real SST as table `number` in staging and returns
  // (file_size, metadata_offset).
  std::pair<uint64_t, uint64_t> BuildTable(uint64_t number, int entries) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(storage_->NewStagingFile(number, &file).ok());
    TableOptions topt;
    TableBuilder builder(topt, file.get());
    for (int i = 0; i < entries; i++) {
      char buf[32];
      snprintf(buf, sizeof(buf), "key%06d", i);
      builder.Add(buf, "value" + std::to_string(i));
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Sync().ok());
    EXPECT_TRUE(file->Close().ok());
    return {builder.FileSize(), builder.MetadataOffset()};
  }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  std::unique_ptr<PersistentCache> pcache_;
  TieredStorageOptions options_;
  std::unique_ptr<TieredTableStorage> storage_;
};

TEST_F(PlacementTest, ShallowLevelsStayLocal) {
  auto [size, mo] = BuildTable(10, 100);
  ASSERT_TRUE(storage_->Install(10, /*level=*/0, size, mo).ok());
  EXPECT_TRUE(storage_->IsLocal(10));
  EXPECT_TRUE(Env::Default()->FileExists(TableFileName(dir_, 10)));
  EXPECT_EQ(0u, cloud_->Counters().puts);
}

TEST_F(PlacementTest, DeepLevelsUploadAndDropLocal) {
  auto [size, mo] = BuildTable(11, 100);
  ASSERT_TRUE(storage_->Install(11, /*level=*/3, size, mo).ok());
  EXPECT_FALSE(storage_->IsLocal(11));
  EXPECT_FALSE(Env::Default()->FileExists(TableFileName(dir_, 11)));
  EXPECT_EQ(1u, cloud_->Counters().puts);
  // Metadata tail was admitted to the packed metadata region at upload.
  uint64_t got_mo, got_fs;
  ASSERT_TRUE(pcache_->GetMetadataInfo(11, &got_mo, &got_fs));
  EXPECT_EQ(mo, got_mo);
  EXPECT_EQ(size, got_fs);
}

TEST_F(PlacementTest, CloudTableReadableThroughBlockSource) {
  auto [size, mo] = BuildTable(12, 500);
  ASSERT_TRUE(storage_->Install(12, 3, size, mo).ok());

  std::unique_ptr<BlockSource> source;
  uint64_t got_size;
  ASSERT_TRUE(storage_->OpenTable(12, &source, &got_size).ok());
  EXPECT_EQ(size, got_size);

  std::unique_ptr<Table> table;
  ASSERT_TRUE(
      Table::Open(TableOptions(), std::move(source), size, nullptr, 1, &table)
          .ok());
  std::unique_ptr<Iterator> it(table->NewIterator());
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  EXPECT_EQ(500, n);
  EXPECT_TRUE(it->status().ok());

  // Metadata (footer/index/filter) came from the local region: no cloud
  // read should have been needed for it; data blocks were range GETs.
  auto stats = pcache_->GetStats();
  EXPECT_GT(stats.metadata.hits, 0u);
}

TEST_F(PlacementTest, SecondScanServedFromPersistentCache) {
  auto [size, mo] = BuildTable(13, 500);
  ASSERT_TRUE(storage_->Install(13, 3, size, mo).ok());

  auto scan = [&] {
    std::unique_ptr<BlockSource> source;
    uint64_t got_size;
    ASSERT_TRUE(storage_->OpenTable(13, &source, &got_size).ok());
    std::unique_ptr<Table> table;
    ASSERT_TRUE(Table::Open(TableOptions(), std::move(source), size, nullptr,
                            1, &table)
                    .ok());
    std::unique_ptr<Iterator> it(table->NewIterator());
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
    EXPECT_EQ(500, n);
  };

  scan();
  const uint64_t gets_after_first = cloud_->Counters().gets;
  scan();
  const uint64_t gets_after_second = cloud_->Counters().gets;
  // Second scan's data blocks come from the persistent cache.
  EXPECT_EQ(gets_after_first, gets_after_second);
  EXPECT_GT(pcache_->GetStats().hits, 0u);
}

TEST_F(PlacementTest, RemoveDeletesEverywhere) {
  auto [size, mo] = BuildTable(14, 100);
  ASSERT_TRUE(storage_->Install(14, 3, size, mo).ok());
  ASSERT_TRUE(storage_->Remove(14).ok());
  ObjectMeta meta;
  EXPECT_TRUE(cloud_->Head(CloudTableKey("tables", 14), &meta).IsNotFound());
  uint64_t got_mo, got_fs;
  EXPECT_FALSE(pcache_->GetMetadataInfo(14, &got_mo, &got_fs));
}

TEST_F(PlacementTest, TrivialMoveAcrossTierBoundaryMigrates) {
  auto [size, mo] = BuildTable(15, 100);
  ASSERT_TRUE(storage_->Install(15, 1, size, mo).ok());
  EXPECT_TRUE(storage_->IsLocal(15));
  // Compaction trivially moves it to level 2 (cloud territory).
  ASSERT_TRUE(storage_->OnLevelChange(15, 2).ok());
  EXPECT_FALSE(storage_->IsLocal(15));
  EXPECT_EQ(1u, cloud_->Counters().puts);
  // And back down.
  ASSERT_TRUE(storage_->OnLevelChange(15, 1).ok());
  EXPECT_TRUE(storage_->IsLocal(15));
}

TEST_F(PlacementTest, SurvivesRestartDiscovery) {
  auto [size1, mo1] = BuildTable(16, 100);
  ASSERT_TRUE(storage_->Install(16, 0, size1, mo1).ok());
  auto [size2, mo2] = BuildTable(17, 100);
  ASSERT_TRUE(storage_->Install(17, 3, size2, mo2).ok());

  // New incarnation over the same directories.
  storage_ = std::make_unique<TieredTableStorage>(options_);
  EXPECT_TRUE(storage_->IsLocal(16));
  EXPECT_FALSE(storage_->IsLocal(17));

  std::unique_ptr<BlockSource> source;
  uint64_t got;
  EXPECT_TRUE(storage_->OpenTable(16, &source, &got).ok());
  EXPECT_TRUE(storage_->OpenTable(17, &source, &got).ok());
  EXPECT_EQ(size2, got);
}

TEST_F(PlacementTest, HeatPinningDownloadsHotFile) {
  options_.pin_hot_files = true;
  options_.pin_after_accesses = 5;
  options_.pin_budget_bytes = 10ull << 20;
  storage_ = std::make_unique<TieredTableStorage>(options_);

  auto [size, mo] = BuildTable(18, 100);
  ASSERT_TRUE(storage_->Install(18, 3, size, mo).ok());
  EXPECT_FALSE(storage_->IsLocal(18));
  for (int i = 0; i < 10; i++) {
    storage_->RecordAccess(18);
  }
  EXPECT_TRUE(storage_->IsLocal(18));  // Pinned now.
}

// ---------- RocksMashDB facade ----------

TEST(RocksMashDBTest, EndToEnd) {
  std::string dir = TestDir("mashdb");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  RocksMashOptions opt;
  opt.local_dir = dir;
  opt.cloud = cloud.get();
  opt.cloud_level_start = 1;
  opt.write_buffer_size = 64 * 1024;
  opt.max_file_size = 64 * 1024;
  opt.wal_segments = 4;

  std::unique_ptr<RocksMashDB> db;
  ASSERT_TRUE(RocksMashDB::Open(opt, &db).ok());

  // Enough data to reach cloud levels.
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();

  std::string value;
  for (int i = 0; i < 5000; i += 113) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("value" + std::to_string(i), value);
  }

  auto stats = db->Stats();
  EXPECT_GT(stats.storage.cloud_files, 0u);     // Data actually tiered.
  EXPECT_GT(stats.cache.metadata.slabs, 0u);    // Metadata region in use.
  EXPECT_GT(stats.monthly_cost.total(), 0.0);

  db.reset();
  std::filesystem::remove_all(dir);
}

TEST(RocksMashDBTest, BackupAndRestoreFromBucketAlone) {
  std::string dir = TestDir("mash_backup");
  std::string restore_dir = TestDir("mash_restore");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  model.list_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  RocksMashOptions opt;
  opt.local_dir = dir;
  opt.cloud = cloud.get();
  opt.cloud_level_start = 1;
  opt.write_buffer_size = 64 * 1024;
  opt.max_file_size = 64 * 1024;

  {
    std::unique_ptr<RocksMashDB> db;
    ASSERT_TRUE(RocksMashDB::Open(opt, &db).ok());
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                          "value" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(db->BackupToCloud("backup").ok());
    // Simulate total local-media loss: the original store and all its local
    // state vanish; only the bucket remains.
    db.reset();
  }
  std::filesystem::remove_all(dir);

  RocksMashOptions ropt = opt;
  ropt.local_dir = restore_dir;
  std::unique_ptr<RocksMashDB> restored;
  ASSERT_TRUE(
      RocksMashDB::RestoreFromCloud(ropt, "backup", &restored).ok());
  std::string value;
  for (int i = 0; i < 4000; i += 37) {
    ASSERT_TRUE(
        restored->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("value" + std::to_string(i), value);
  }

  // Restoring into a non-empty directory is refused.
  std::unique_ptr<RocksMashDB> dup;
  EXPECT_FALSE(
      RocksMashDB::RestoreFromCloud(ropt, "backup", &dup).ok());
  restored.reset();
  std::filesystem::remove_all(restore_dir);
}

TEST(RocksMashDBTest, RestoreMissingBackupFails) {
  std::string dir = TestDir("mash_norestore");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);
  RocksMashOptions opt;
  opt.local_dir = dir;
  opt.cloud = cloud.get();
  std::unique_ptr<RocksMashDB> db;
  Status s = RocksMashDB::RestoreFromCloud(opt, "nothing-here", &db);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  std::filesystem::remove_all(dir);
}

TEST(RocksMashDBTest, ReopenRecoversFromEWalAndCloud) {
  std::string dir = TestDir("mashdb_reopen");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  RocksMashOptions opt;
  opt.local_dir = dir;
  opt.cloud = cloud.get();
  opt.cloud_level_start = 1;
  opt.write_buffer_size = 64 * 1024;
  opt.max_file_size = 64 * 1024;
  opt.wal_segments = 4;

  {
    std::unique_ptr<RocksMashDB> db;
    ASSERT_TRUE(RocksMashDB::Open(opt, &db).ok());
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                          "value" + std::to_string(i))
                      .ok());
    }
    db->WaitForCompaction();
    // Unflushed tail lives in the eWAL only; make it durable with sync.
    WriteOptions sync_wo;
    sync_wo.sync = true;
    for (int i = 3000; i < 3100; i++) {
      ASSERT_TRUE(db->Put(sync_wo, "key" + std::to_string(i),
                          "value" + std::to_string(i))
                      .ok());
    }
  }

  {
    std::unique_ptr<RocksMashDB> db;
    ASSERT_TRUE(RocksMashDB::Open(opt, &db).ok());
    std::string value;
    for (int i = 0; i < 3100; i += 61) {
      ASSERT_TRUE(
          db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
          << i;
      EXPECT_EQ("value" + std::to_string(i), value);
    }
    auto stats = db->Stats();
    EXPECT_GT(stats.recovery.records_replayed, 0u);
    EXPECT_EQ(4, stats.recovery.shards_used);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rocksmash
