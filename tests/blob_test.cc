// Tests for key-value separation (BlobOptions): flush-time separation of
// large values into blob files, point/batched/iterator reads through blob
// indexes, MANIFEST-backed blob metadata across reopen, compaction-driven
// GC, and the tiered (cloud) blob path with in-flight uploads.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/object_store.h"
#include "env/env.h"
#include "lsm/db.h"
#include "mash/placement.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

// A value whose content is derived from (key, generation, size) so every
// read is self-validating without consulting the model.
std::string MakeValue(const std::string& key, int generation, size_t size) {
  std::string v = key + "#" + std::to_string(generation) + "#";
  while (v.size() < size) {
    v += static_cast<char>('a' + (v.size() * 131 + generation) % 26);
  }
  v.resize(size);
  return v;
}

class BlobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "/rocksmash_blob_test_" +
              std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dbname_);
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 * 1024;
    options_.blob.enable = true;
    options_.blob.min_blob_size = 128;
    options_.blob.blob_file_size = 32 * 1024;
    options_.blob.blob_gc_age_cutoff = 0.3;
    options_.statistics = &stats_;
  }

  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dbname_);
  }

  Status Open() { return DB::Open(options_, dbname_, &db_); }

  Status Reopen() {
    db_.reset();
    return Open();
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }

  std::string Get(const std::string& k) {
    PinnableSlice value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return std::string(value.data(), value.size());
  }

  uint64_t Ticker(uint32_t t) { return stats_.GetTickerCount(t); }

  DBOptions options_;
  Statistics stats_;
  std::string dbname_;
  std::unique_ptr<DB> db_;
};

TEST_F(BlobTest, SeparationBoundaryAndTickers) {
  ASSERT_TRUE(Open().ok());
  const std::string small = MakeValue("inline", 0, options_.blob.min_blob_size - 1);
  const std::string large = MakeValue("blob", 0, options_.blob.min_blob_size);
  ASSERT_TRUE(Put("inline", small).ok());
  ASSERT_TRUE(Put("blob", large).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());

  EXPECT_EQ(1u, Ticker(BLOB_WRITE_SEPARATED));
  EXPECT_EQ(large.size(), Ticker(BLOB_WRITE_SEPARATED_BYTES));
  EXPECT_EQ(1u, Ticker(BLOB_WRITE_INLINE));
  EXPECT_EQ(1u, Ticker(BLOB_FILES_CREATED));

  // Both sides of the boundary read back identically through every overload.
  EXPECT_EQ(small, Get("inline"));
  EXPECT_EQ(large, Get("blob"));
  std::string copied;
  ASSERT_TRUE(db_->Get(ReadOptions(), "blob", &copied).ok());
  EXPECT_EQ(large, copied);
  EXPECT_GT(Ticker(BLOB_READ_COUNT), 0u);
  EXPECT_GT(Ticker(BLOB_READ_BYTES), 0u);
}

TEST_F(BlobTest, SeparationDisabledKeepsValuesInline) {
  options_.blob.enable = false;
  ASSERT_TRUE(Open().ok());
  const std::string large = MakeValue("k", 0, 4096);
  ASSERT_TRUE(Put("k", large).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(0u, Ticker(BLOB_WRITE_SEPARATED));
  EXPECT_EQ(0u, Ticker(BLOB_FILES_CREATED));
  EXPECT_EQ(large, Get("k"));
}

TEST_F(BlobTest, InvalidBlobOptionsRejectedAtOpen) {
  options_.blob.min_blob_size = 0;
  ASSERT_TRUE(Open().IsInvalidArgument());
  options_.blob.min_blob_size = 128;
  options_.blob.blob_gc_age_cutoff = 1.5;
  ASSERT_TRUE(Open().IsInvalidArgument());
  options_.blob.blob_gc_age_cutoff = 0.5;
  options_.blob.blob_file_size = 0;
  ASSERT_TRUE(Open().IsInvalidArgument());
}

// The randomized model test from the issue: puts/deletes/overwrites with
// value sizes straddling the separation boundary, interleaved with flushes,
// compactions, and reopens; the DB must agree with a std::map at every
// checkpoint, through Get and through forward/backward scans.
TEST_F(BlobTest, RandomizedModelAcrossValueSizes) {
  ASSERT_TRUE(Open().ok());
  Random64 rnd(301);
  std::map<std::string, std::string> model;
  const size_t kSizes[] = {1, 16, 100, 127, 128, 129, 300, 1024, 5000};

  auto check = [&]() {
    // Point lookups, including keys never written.
    for (const auto& [k, v] : model) {
      ASSERT_EQ(v, Get(k)) << "key " << k;
    }
    ASSERT_EQ("NOT_FOUND", Get("zz-never-written"));
    // Forward scan must equal the model exactly.
    auto it = db_->NewIterator(ReadOptions());
    auto mit = model.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
      ASSERT_NE(mit, model.end());
      ASSERT_EQ(mit->first, it->key().ToString());
      ASSERT_EQ(mit->second, it->value().ToString());
    }
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
    ASSERT_EQ(mit, model.end());
    // Backward scan resolves blob values through the save/restore path.
    auto rit = model.rbegin();
    for (it->SeekToLast(); it->Valid(); it->Prev(), ++rit) {
      ASSERT_NE(rit, model.rend());
      ASSERT_EQ(rit->first, it->key().ToString());
      ASSERT_EQ(rit->second, it->value().ToString());
    }
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
  };

  for (int step = 0; step < 6; step++) {
    for (int i = 0; i < 300; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%03d", rnd.Uniform(400));
      if (rnd.OneIn(5)) {
        ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
        model.erase(key);
      } else {
        const size_t size = kSizes[rnd.Uniform(sizeof(kSizes) / sizeof(kSizes[0]))];
        std::string v = MakeValue(key, step, size);
        ASSERT_TRUE(Put(key, v).ok());
        model[key] = std::move(v);
      }
    }
    switch (step % 3) {
      case 0:
        ASSERT_TRUE(db_->FlushMemTable().ok());
        break;
      case 1:
        ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
        break;
      case 2:
        ASSERT_TRUE(Reopen().ok()) << "reopen at step " << step;
        break;
    }
    check();
  }
  EXPECT_GT(Ticker(BLOB_WRITE_SEPARATED), 0u);
  EXPECT_GT(Ticker(BLOB_WRITE_INLINE), 0u);
}

TEST_F(BlobTest, MultiGetResolvesBlobBatches) {
  ASSERT_TRUE(Open().ok());
  const int n = 60;
  std::vector<std::string> expected(n);
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    // Mix separated and inline values in one batch.
    const size_t size = (i % 3 == 0) ? 64 : 2048;
    expected[i] = MakeValue(key, 0, size);
    ASSERT_TRUE(Put(key, expected[i]).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::vector<std::string> key_storage(n);
  std::vector<Slice> keys;
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    key_storage[i] = key;
    keys.emplace_back(key_storage[i]);
  }
  keys.emplace_back("missing-key");

  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  db_->MultiGet(ReadOptions(), keys, &values, &statuses);
  ASSERT_EQ(keys.size(), values.size());
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
    EXPECT_EQ(expected[i], std::string(values[i].data(), values[i].size()));
  }
  EXPECT_TRUE(statuses[n].IsNotFound());

  // The std::string compatibility overload sees the same results.
  std::vector<std::string> copies;
  std::vector<Status> statuses2;
  db_->MultiGet(ReadOptions(), keys, &copies, &statuses2);
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(statuses2[i].ok());
    EXPECT_EQ(expected[i], copies[i]);
  }
}

TEST_F(BlobTest, ReopenPreservesBlobMetadata) {
  ASSERT_TRUE(Open().ok());
  const int n = 40;
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_TRUE(Put(key, MakeValue(key, 0, 1500)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::map<std::string, std::string> before;
  ASSERT_TRUE(db_->GetProperty("rocksmash.blob", &before));
  ASSERT_GT(std::stoull(before["blob.files"]), 0u);
  ASSERT_GT(std::stoull(before["blob.payload.bytes"]), 0u);

  ASSERT_TRUE(Reopen().ok());
  std::map<std::string, std::string> after;
  ASSERT_TRUE(db_->GetProperty("rocksmash.blob", &after));
  // The MANIFEST round-trips the full blob accounting.
  EXPECT_EQ(before["blob.files"], after["blob.files"]);
  EXPECT_EQ(before["blob.payload.bytes"], after["blob.payload.bytes"]);
  EXPECT_EQ(before["blob.records"], after["blob.records"]);
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    EXPECT_EQ(MakeValue(key, 0, 1500), Get(key));
  }
}

TEST_F(BlobTest, GcReclaimsGarbageBlobFiles) {
  ASSERT_TRUE(Open().ok());
  const int n = 60;
  auto put_all = [&](int generation, int stride) {
    for (int i = 0; i < n; i += stride) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%03d", i);
      ASSERT_TRUE(Put(key, MakeValue(key, generation, 1200)).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  };

  put_all(0, 1);
  // Overwrite half: the drop of the old versions during compaction marks
  // ~50% of every generation-0 blob file as garbage (>= the 0.3 cutoff).
  put_all(1, 2);
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  std::map<std::string, std::string> props;
  ASSERT_TRUE(db_->GetProperty("rocksmash.blob", &props));
  EXPECT_GT(std::stoull(props["blob.garbage.bytes"]), 0u);

  // The next compaction over the same keys sees the generation-0 files as
  // GC candidates and rewrites their surviving records, obsoleting them.
  put_all(2, 3);
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  EXPECT_GT(Ticker(BLOB_GC_REWRITTEN_BYTES), 0u);
  EXPECT_GT(Ticker(BLOB_GC_FILES_OBSOLETED), 0u);

  // Everything still reads correctly after files were rewritten + deleted.
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    const int generation = (i % 3 == 0) ? 2 : (i % 2 == 0) ? 1 : 0;
    ASSERT_EQ(MakeValue(key, generation, 1200), Get(key)) << key;
  }
}

// GC must never yank a blob file out from under a concurrent reader: the
// version holding the old blob index keeps the file live until released.
TEST_F(BlobTest, GcRacesReadsUnderChurn) {
  options_.write_buffer_size = 32 * 1024;
  ASSERT_TRUE(Open().ok());
  const int kKeys = 50;
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};

  std::thread reader([&]() {
    Random64 rnd(17);
    while (!stop.load(std::memory_order_relaxed)) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%03d", rnd.Uniform(kKeys));
      PinnableSlice value;
      Status s = db_->Get(ReadOptions(), key, &value);
      if (s.ok()) {
        // Self-validating prefix: "key###" must match.
        if (Slice(value.data(), value.size()).ToString().rfind(key, 0) != 0) {
          read_errors++;
        }
      } else if (!s.IsNotFound()) {
        read_errors++;
      }
    }
  });
  std::thread scanner([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      auto it = db_->NewIterator(ReadOptions());
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        if (it->value().ToString().rfind(it->key().ToString(), 0) != 0) {
          read_errors++;
        }
      }
      if (!it->status().ok()) read_errors++;
    }
  });

  Random64 rnd(42);
  for (int round = 0; round < 40; round++) {
    for (int i = 0; i < kKeys; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%03d", i);
      ASSERT_TRUE(Put(key, MakeValue(key, round, 800 + rnd.Uniform(800))).ok());
    }
    if (round % 5 == 4) {
      ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
    }
  }
  db_->WaitForCompaction();
  stop = true;
  reader.join();
  scanner.join();
  EXPECT_EQ(0, read_errors.load());
}

// Blob files tier to the cloud like SSTs. Park their uploads with a cloud
// outage, close the DB with the uploads still in flight, and reopen: the
// values must stay readable from the local staging copies, and once the
// cloud heals the blob data survives placement to it.
TEST_F(BlobTest, ReopenWithInFlightBlobUploads) {
  const std::string dir = ::testing::TempDir() + "/rocksmash_blob_cloud_" +
                          std::to_string(reinterpret_cast<uintptr_t>(this));
  std::filesystem::remove_all(dir);
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);
  auto* faults = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, faults);

  auto make_storage = [&]() {
    TieredStorageOptions ts;
    ts.local_dir = dir;
    ts.cloud = cloud.get();
    ts.cloud_level_start = 0;  // Everything, blobs included, wants the cloud.
    ts.async_uploads = true;
    ts.statistics = &stats_;
    return std::make_unique<TieredTableStorage>(ts);
  };

  // Outage: installs park their uploads and keep serving locally.
  CloudFaultPolicy outage;
  outage.unavailable = true;
  faults->SetFaultPolicy(outage);

  auto storage = make_storage();
  options_.table_storage = storage.get();
  ASSERT_TRUE(DB::Open(options_, dir, &db_).ok());
  const int n = 20;
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_TRUE(Put(key, MakeValue(key, 0, 2000)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(Ticker(BLOB_FILES_CREATED), 0u);

  // Reads work during the outage (served from the staging copies).
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_EQ(MakeValue(key, 0, 2000), Get(key));
  }

  // "Crash": drop the DB and the storage with uploads still parked, then
  // heal the cloud and reopen over the same directory.
  db_.reset();
  storage.reset();
  faults->SetFaultPolicy(CloudFaultPolicy{});

  storage = make_storage();
  options_.table_storage = storage.get();
  ASSERT_TRUE(DB::Open(options_, dir, &db_).ok());
  for (int i = 0; i < n; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_EQ(MakeValue(key, 0, 2000), Get(key)) << key;
  }

  db_.reset();
  storage.reset();
  options_.table_storage = nullptr;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rocksmash
