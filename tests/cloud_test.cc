// Tests for the simulated object store, cost meter, and CloudEnv adapter.
#include <gtest/gtest.h>

#include <filesystem>

#include "cloud/cloud_env.h"
#include "cloud/cost_meter.h"
#include "cloud/object_store.h"
#include "util/clock.h"

namespace rocksmash {
namespace {

class ObjectStoreKinds : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    model_.jitter_micros = 0;
    if (std::string(GetParam()) == "dir") {
      root_ = ::testing::TempDir() + "/rocksmash_cloud_test";
      std::filesystem::remove_all(root_);
      store_ = NewSimObjectStore(root_, &clock_, model_);
    } else {
      store_ = NewMemObjectStore(&clock_, model_);
    }
  }

  void TearDown() override {
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  SimClock clock_;
  CloudLatencyModel model_;
  std::unique_ptr<ObjectStore> store_;
  std::string root_;
};

TEST_P(ObjectStoreKinds, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("key", "value").ok());
  std::string data;
  ASSERT_TRUE(store_->Get("key", &data).ok());
  EXPECT_EQ("value", data);
}

TEST_P(ObjectStoreKinds, GetMissing) {
  std::string data;
  EXPECT_TRUE(store_->Get("missing", &data).IsNotFound());
}

TEST_P(ObjectStoreKinds, Overwrite) {
  ASSERT_TRUE(store_->Put("k", "v1").ok());
  ASSERT_TRUE(store_->Put("k", "v2").ok());
  std::string data;
  ASSERT_TRUE(store_->Get("k", &data).ok());
  EXPECT_EQ("v2", data);
  EXPECT_EQ(2u, store_->BytesStored());
}

TEST_P(ObjectStoreKinds, RangeRead) {
  ASSERT_TRUE(store_->Put("k", "0123456789").ok());
  std::string data;
  ASSERT_TRUE(store_->GetRange("k", 3, 4, &data).ok());
  EXPECT_EQ("3456", data);
  // Past end: short.
  ASSERT_TRUE(store_->GetRange("k", 8, 10, &data).ok());
  EXPECT_EQ("89", data);
  ASSERT_TRUE(store_->GetRange("k", 100, 10, &data).ok());
  EXPECT_TRUE(data.empty());
}

TEST_P(ObjectStoreKinds, HeadAndDelete) {
  ASSERT_TRUE(store_->Put("k", "abc").ok());
  ObjectMeta meta;
  ASSERT_TRUE(store_->Head("k", &meta).ok());
  EXPECT_EQ(3u, meta.size);
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Head("k", &meta).IsNotFound());
  EXPECT_TRUE(store_->Delete("k").IsNotFound());
  EXPECT_EQ(0u, store_->BytesStored());
}

TEST_P(ObjectStoreKinds, ListByPrefix) {
  ASSERT_TRUE(store_->Put("a/1", "x").ok());
  ASSERT_TRUE(store_->Put("a/2", "xy").ok());
  ASSERT_TRUE(store_->Put("b/1", "z").ok());
  std::vector<ObjectMeta> result;
  ASSERT_TRUE(store_->List("a/", &result).ok());
  ASSERT_EQ(2u, result.size());
  EXPECT_EQ("a/1", result[0].key);
  EXPECT_EQ("a/2", result[1].key);
  EXPECT_EQ(2u, result[1].size);
}

TEST_P(ObjectStoreKinds, LatencyModelCharged) {
  model_.jitter_micros = 0;
  const uint64_t t0 = clock_.NowMicros();
  ASSERT_TRUE(store_->Put("k", std::string(1024, 'x')).ok());
  // put_first_byte (2000us default) + transfer time.
  EXPECT_GE(clock_.NowMicros() - t0, 2000u);
}

TEST_P(ObjectStoreKinds, CountersTrackOps) {
  ASSERT_TRUE(store_->Put("k", "0123456789").ok());
  std::string data;
  ASSERT_TRUE(store_->Get("k", &data).ok());
  ASSERT_TRUE(store_->GetRange("k", 0, 4, &data).ok());
  auto counters = store_->Counters();
  EXPECT_EQ(1u, counters.puts);
  EXPECT_EQ(2u, counters.gets);
  EXPECT_EQ(10u, counters.bytes_uploaded);
  EXPECT_EQ(14u, counters.bytes_downloaded);
}

TEST_P(ObjectStoreKinds, FaultInjectionEveryN) {
  auto* injectable = dynamic_cast<FaultInjectable*>(store_.get());
  ASSERT_NE(nullptr, injectable);
  CloudFaultPolicy policy;
  policy.fail_every_n = 2;
  injectable->SetFaultPolicy(policy);
  int failures = 0;
  for (int i = 0; i < 10; i++) {
    if (!store_->Put("k" + std::to_string(i), "v").ok()) failures++;
  }
  EXPECT_EQ(5, failures);
}

TEST_P(ObjectStoreKinds, Unavailability) {
  auto* injectable = dynamic_cast<FaultInjectable*>(store_.get());
  CloudFaultPolicy policy;
  policy.unavailable = true;
  injectable->SetFaultPolicy(policy);
  EXPECT_TRUE(store_->Put("k", "v").IsUnavailable());
  policy.unavailable = false;
  injectable->SetFaultPolicy(policy);
  EXPECT_TRUE(store_->Put("k", "v").ok());
}

INSTANTIATE_TEST_SUITE_P(AllStores, ObjectStoreKinds,
                         ::testing::Values("dir", "mem"));

TEST(DirObjectStoreTest, SurvivesReopen) {
  std::string root = ::testing::TempDir() + "/rocksmash_cloud_reopen";
  std::filesystem::remove_all(root);
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  {
    auto store = NewSimObjectStore(root, &clock, model);
    ASSERT_TRUE(store->Put("dir/key1", "hello").ok());
  }
  {
    auto store = NewSimObjectStore(root, &clock, model);
    std::string data;
    ASSERT_TRUE(store->Get("dir/key1", &data).ok());
    EXPECT_EQ("hello", data);
    EXPECT_EQ(5u, store->BytesStored());
  }
  std::filesystem::remove_all(root);
}

TEST(CostMeterTest, StorageCostScalesWithBytes) {
  CostMeter meter;
  ObjectStore::OpCounters ops;
  auto b1 = meter.MonthlyCost(1ull << 30, 0, ops, 1.0);
  auto b10 = meter.MonthlyCost(10ull << 30, 0, ops, 1.0);
  EXPECT_NEAR(b10.cloud_storage_usd, 10 * b1.cloud_storage_usd, 1e-9);
  EXPECT_GT(b1.cloud_storage_usd, 0);
}

TEST(CostMeterTest, LocalStorageMoreExpensivePerGb) {
  CostMeter meter;
  ObjectStore::OpCounters ops;
  auto cloud = meter.MonthlyCost(1ull << 30, 0, ops, 1.0);
  auto local = meter.MonthlyCost(0, 1ull << 30, ops, 1.0);
  EXPECT_GT(local.local_storage_usd, cloud.cloud_storage_usd);
}

TEST(CostMeterTest, RequestCostScalesToMonth) {
  CostMeter meter;
  ObjectStore::OpCounters ops;
  ops.gets = 1000;
  // 1000 GETs observed in 1 hour -> 730k GETs/month.
  auto b = meter.MonthlyCost(0, 0, ops, 1.0);
  EXPECT_NEAR(b.cloud_requests_usd, 730.0 * meter.card().cloud_get_usd_per_1k,
              1e-9);
}

TEST(CloudEnvTest, FileApiOverObjects) {
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto store = NewMemObjectStore(&clock, model);
  CloudEnv env(store.get());

  // Write through the Env API.
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env.NewWritableFile("dir/file", &wf).ok());
  ASSERT_TRUE(wf->Append("hello ").ok());
  ASSERT_TRUE(wf->Append("cloud").ok());
  ASSERT_TRUE(wf->Close().ok());

  EXPECT_TRUE(env.FileExists("dir/file"));
  uint64_t size;
  ASSERT_TRUE(env.GetFileSize("dir/file", &size).ok());
  EXPECT_EQ(11u, size);

  // Random access maps to range GETs.
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env.NewRandomAccessFile("dir/file", &rf).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(rf->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ("cloud", result.ToString());

  // Children.
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("dir", &children).ok());
  ASSERT_EQ(1u, children.size());
  EXPECT_EQ("file", children[0]);

  // Rename + remove.
  ASSERT_TRUE(env.RenameFile("dir/file", "dir/file2").ok());
  EXPECT_FALSE(env.FileExists("dir/file"));
  ASSERT_TRUE(env.RemoveFile("dir/file2").ok());
  EXPECT_FALSE(env.FileExists("dir/file2"));
}

}  // namespace
}  // namespace rocksmash
