// Model-checked iterator tests: randomized scans across every scheme and
// tier compared against a std::map reference, snapshot isolation, the
// forward-only prefix contract, filter-based run skipping, streaming cloud
// readahead, scans racing flush/compaction, and mid-scan cloud outages
// surfacing through Iterator::status().
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/kvstore.h"
#include "cloud/object_store.h"
#include "env/env.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

using Model = std::map<std::string, std::string>;

std::string PrefixedKey(uint64_t group, uint64_t n) {
  char buf[32];
  snprintf(buf, sizeof(buf), "p%02d-%08d", static_cast<int>(group),
           static_cast<int>(n));
  return buf;
}

// Walk the live iterator and the model in lockstep from a common start.
void ExpectMatchesModel(Iterator* it, const Model& model,
                        Model::const_iterator pos, size_t max_steps) {
  size_t steps = 0;
  while (steps < max_steps && pos != model.end()) {
    ASSERT_TRUE(it->Valid()) << "iterator ended early at model key "
                             << pos->first << ": " << it->status().ToString();
    EXPECT_EQ(pos->first, it->key().ToString());
    EXPECT_EQ(pos->second, it->value().ToString());
    it->Next();
    ++pos;
    ++steps;
  }
  if (pos == model.end()) {
    EXPECT_FALSE(it->Valid());
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
}

// (scheme, prefix_length, scan_readahead_bytes, compress_blocks)
using IterParam = std::tuple<SchemeKind, size_t, uint64_t, bool>;

class IteratorModelTest : public ::testing::TestWithParam<IterParam> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    dir_ = ::testing::TempDir() + "/rocksmash_iter_" +
           std::string(SchemeName(std::get<0>(p))) + "_" +
           std::to_string(std::get<1>(p)) + "_" +
           std::to_string(std::get<2>(p)) + "_" +
           std::to_string(static_cast<int>(std::get<3>(p)));
    std::filesystem::remove_all(dir_);

    CloudLatencyModel model;
    model.jitter_micros = 0;
    model.get_first_byte_micros = 1;
    model.put_first_byte_micros = 1;
    cloud_ = NewMemObjectStore(&clock_, model);

    options_.kind = std::get<0>(p);
    options_.local_dir = dir_;
    options_.cloud =
        options_.kind == SchemeKind::kLocalOnly ? nullptr : cloud_.get();
    // Small buffers: the workload spans memtable, L0 and deeper levels.
    options_.write_buffer_size = 32 * 1024;
    options_.max_file_size = 32 * 1024;
    options_.max_bytes_for_level_base = 128 * 1024;
    options_.local_cache_bytes = 1 << 20;
    options_.cloud_level_start = 1;
    options_.prefix_length = std::get<1>(p);
    options_.compress_blocks = std::get<3>(p);
    ASSERT_TRUE(OpenKVStore(options_, &store_).ok());

    read_options_.scan_readahead_bytes = std::get<2>(p);
  }

  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Randomized puts/overwrites/deletes mirrored into the model, with
  // periodic flushes so the data lands in every tier.
  void LoadRandom(Model* model, uint64_t seed, int ops) {
    Random64 rng(seed);
    for (int i = 0; i < ops; i++) {
      const std::string key = PrefixedKey(rng.Uniform(12), rng.Uniform(400));
      if (rng.Uniform(10) == 0) {
        ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
        model->erase(key);
      } else {
        const std::string value =
            "v" + std::to_string(rng.Uniform(1u << 30)) + std::string(40, 'x');
        ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
        (*model)[key] = value;
      }
      if (i % 500 == 499) {
        ASSERT_TRUE(store_->FlushMemTable().ok());
      }
    }
  }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  SchemeOptions options_;
  std::unique_ptr<KVStore> store_;
  ReadOptions read_options_;
};

TEST_P(IteratorModelTest, RandomizedScansMatchModel) {
  Model model;
  LoadRandom(&model, 7, 2000);

  // Full forward scan.
  {
    std::unique_ptr<Iterator> it = store_->NewIterator(read_options_);
    it->SeekToFirst();
    ExpectMatchesModel(it.get(), model, model.begin(), model.size() + 1);
  }

  // Full backward scan.
  {
    std::unique_ptr<Iterator> it = store_->NewIterator(read_options_);
    auto pos = model.rbegin();
    for (it->SeekToLast(); pos != model.rend(); it->Prev(), ++pos) {
      ASSERT_TRUE(it->Valid()) << it->status().ToString();
      EXPECT_EQ(pos->first, it->key().ToString());
      EXPECT_EQ(pos->second, it->value().ToString());
    }
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  }

  // Random seeks (hits and misses) with short forward walks.
  {
    Random64 rng(99);
    std::unique_ptr<Iterator> it = store_->NewIterator(read_options_);
    for (int i = 0; i < 60; i++) {
      const std::string target =
          PrefixedKey(rng.Uniform(14), rng.Uniform(450));
      it->Seek(target);
      ExpectMatchesModel(it.get(), model, model.lower_bound(target), 25);
    }
  }

  // Snapshot isolation: a snapshot scan sees the frozen model even after
  // further writes, flushes, and compactions.
  {
    const Snapshot* snap = store_->db()->GetSnapshot();
    const Model frozen = model;
    LoadRandom(&model, 13, 600);
    store_->WaitForCompaction();

    ReadOptions snap_ro = read_options_;
    snap_ro.snapshot = snap;
    std::unique_ptr<Iterator> it = store_->NewIterator(snap_ro);
    it->SeekToFirst();
    ExpectMatchesModel(it.get(), model, model.begin(), 0);  // no-op guard
    ExpectMatchesModel(it.get(), frozen, frozen.begin(), frozen.size() + 1);
    store_->db()->ReleaseSnapshot(snap);

    std::unique_ptr<Iterator> live = store_->NewIterator(read_options_);
    live->SeekToFirst();
    ExpectMatchesModel(live.get(), model, model.begin(), model.size() + 1);
  }
}

TEST_P(IteratorModelTest, PrefixScansMatchModelAndAreForwardOnly) {
  if (options_.prefix_length == 0) {
    GTEST_SKIP() << "prefix extractor disabled in this config";
  }
  Model model;
  LoadRandom(&model, 21, 1500);

  ReadOptions ro = read_options_;
  ro.prefix_same_as_start = true;
  Random64 rng(5);
  for (int round = 0; round < 12; round++) {
    const uint64_t group = rng.Uniform(12);
    const std::string target = PrefixedKey(group, rng.Uniform(200));
    const std::string prefix = target.substr(0, options_.prefix_length);

    std::unique_ptr<Iterator> it = store_->NewIterator(ro);
    it->Seek(target);
    auto pos = model.lower_bound(target);
    while (pos != model.end() &&
           Slice(pos->first).starts_with(prefix)) {
      ASSERT_TRUE(it->Valid())
          << "ended early at " << pos->first << ": "
          << it->status().ToString();
      EXPECT_EQ(pos->first, it->key().ToString());
      EXPECT_EQ(pos->second, it->value().ToString());
      it->Next();
      ++pos;
    }
    // Stops exactly at the prefix boundary.
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  }

  // Forward-only contract: Prev() after a prefix Seek invalidates.
  std::unique_ptr<Iterator> it = store_->NewIterator(ro);
  it->Seek(PrefixedKey(3, 50));
  if (it->Valid()) {
    it->Prev();
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, IteratorModelTest,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kLocalOnly, SchemeKind::kCloudOnly,
                          SchemeKind::kCloudSstCache, SchemeKind::kRocksMash),
        ::testing::Values(size_t{0}, size_t{3}),   // "p03" group prefix
        ::testing::Values(uint64_t{0}, uint64_t{64 * 1024}),
        ::testing::Values(false, true)));

// ---------- Scans racing flush and compaction ----------

TEST(IteratorRaceTest, ScanStableUnderFlushAndCompactionChurn) {
  const std::string dir = ::testing::TempDir() + "/rocksmash_iter_race";
  std::filesystem::remove_all(dir);

  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  SchemeOptions options;
  options.kind = SchemeKind::kRocksMash;
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.write_buffer_size = 32 * 1024;
  options.max_file_size = 32 * 1024;
  options.cloud_level_start = 1;
  options.prefix_length = 3;
  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());

  // Stable range: written once, never touched again.
  Model stable;
  for (int i = 0; i < 400; i++) {
    const std::string key = PrefixedKey(5, static_cast<uint64_t>(i));
    const std::string value = "stable" + std::to_string(i);
    ASSERT_TRUE(store->Put(WriteOptions(), key, value).ok());
    stable[key] = value;
  }
  ASSERT_TRUE(store->FlushMemTable().ok());

  // Churn threads write a disjoint range and hammer flushes so version
  // installs and memtable switches land mid-scan.
  std::atomic<bool> stop{false};
  std::thread writer([&store, &stop] {
    Random64 rng(3);
    WriteOptions wo;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string key = PrefixedKey(9, rng.Uniform(2000));
      if (!store->Put(wo, key, "churn").ok()) break;
    }
  });
  std::thread flusher([&store, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(store->FlushMemTable().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Scans over the stable range (plain, prefix-mode, and snapshot) must
  // return exactly the stable set while churn runs.
  for (int round = 0; round < 30; round++) {
    ReadOptions ro;
    ro.prefix_same_as_start = (round % 2 == 1);
    const Snapshot* snap = nullptr;
    if (round % 3 == 2) {
      snap = store->db()->GetSnapshot();
      ro.snapshot = snap;
    }
    std::unique_ptr<Iterator> it = store->NewIterator(ro);
    it->Seek(PrefixedKey(5, 0));
    auto pos = stable.begin();
    while (pos != stable.end()) {
      ASSERT_TRUE(it->Valid()) << it->status().ToString();
      ASSERT_EQ(pos->first, it->key().ToString());
      EXPECT_EQ(pos->second, it->value().ToString());
      it->Next();
      ++pos;
    }
    if (ro.prefix_same_as_start) {
      EXPECT_FALSE(it->Valid());  // next key is outside the p05 prefix
    }
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
    if (snap != nullptr) store->db()->ReleaseSnapshot(snap);
  }

  stop.store(true, std::memory_order_release);
  writer.join();
  flusher.join();
  store.reset();
  std::filesystem::remove_all(dir);
}

// ---------- Mid-scan cloud outage surfaces via status() ----------

TEST(IteratorFaultTest, CloudOutageMidScanSurfacesError) {
  const std::string dir = ::testing::TempDir() + "/rocksmash_iter_fault";
  std::filesystem::remove_all(dir);

  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  SchemeOptions options;
  options.kind = SchemeKind::kCloudOnly;  // every SST block is a cloud read
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.write_buffer_size = 32 * 1024;
  options.max_file_size = 32 * 1024;
  options.block_cache_bytes = 4 * 1024;   // no help from the block cache
  options.cloud_readahead_bytes = 0;      // one GET per block
  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());

  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(store
                    ->Put(WriteOptions(), PrefixedKey(1, i),
                          "value" + std::to_string(i) + std::string(60, 'y'))
                    .ok());
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  store->WaitForCompaction();

  ReadOptions ro;
  ro.scan_readahead_bytes = 0;  // no prefetched bytes to coast on
  std::unique_ptr<Iterator> it = store->NewIterator(ro);
  it->SeekToFirst();
  for (int i = 0; i < 10 && it->Valid(); i++) it->Next();
  ASSERT_TRUE(it->Valid()) << it->status().ToString();

  // Cloud goes dark mid-scan: the scan must stop and report the error, not
  // silently skip the unreadable tail.
  auto* faults = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, faults);
  CloudFaultPolicy outage;
  outage.unavailable = true;
  faults->SetFaultPolicy(outage);

  int steps = 0;
  while (it->Valid() && steps++ < 5000) it->Next();
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(it->status().ok());

  faults->SetFaultPolicy(CloudFaultPolicy());
  it.reset();
  store.reset();
  std::filesystem::remove_all(dir);
}

// ---------- Scan tickers: run skipping and streaming readahead ----------

TEST(IteratorTickerTest, PrefixSeekSkipsRunsAndTicks) {
  const std::string dir = ::testing::TempDir() + "/rocksmash_iter_skip";
  std::filesystem::remove_all(dir);

  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);
  auto stats = CreateDBStatistics();

  SchemeOptions options;
  options.kind = SchemeKind::kRocksMash;
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.prefix_length = 3;
  options.statistics = stats.get();
  options.cloud_level_start = 1;
  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());

  // File A: groups 1 and 5 (a seek for group 3 lands inside it). File B:
  // group 3. The filter on file A's landing block excludes prefix "p03",
  // so prefix seeks must skip file A without opening its data blocks.
  Model expected;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store->Put(WriteOptions(), PrefixedKey(1, i),
                           std::string(100, 'a'))
                    .ok());
    ASSERT_TRUE(store->Put(WriteOptions(), PrefixedKey(5, i),
                           std::string(100, 'c'))
                    .ok());
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  for (int i = 0; i < 200; i++) {
    const std::string key = PrefixedKey(3, i);
    const std::string value = "b" + std::to_string(i);
    ASSERT_TRUE(store->Put(WriteOptions(), key, value).ok());
    expected[key] = value;
  }
  ASSERT_TRUE(store->FlushMemTable().ok());

  ReadOptions ro;
  ro.prefix_same_as_start = true;
  std::unique_ptr<Iterator> it = store->NewIterator(ro);
  it->Seek(PrefixedKey(3, 0));
  auto pos = expected.begin();
  while (pos != expected.end()) {
    ASSERT_TRUE(it->Valid()) << it->status().ToString();
    ASSERT_EQ(pos->first, it->key().ToString());
    EXPECT_EQ(pos->second, it->value().ToString());
    it->Next();
    ++pos;
  }
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_GT(stats->GetTickerCount(SCAN_RUNS_SKIPPED), 0u);

  it.reset();
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST(IteratorTickerTest, StreamingReadaheadServesColdCloudScan) {
  const std::string dir = ::testing::TempDir() + "/rocksmash_iter_ra";
  std::filesystem::remove_all(dir);

  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);
  auto stats = CreateDBStatistics();

  SchemeOptions options;
  options.kind = SchemeKind::kRocksMash;
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.cloud_level_start = 0;     // everything cloud-resident
  options.cloud_readahead_bytes = 0; // isolate the streaming path
  options.block_cache_bytes = 4 * 1024;
  options.local_cache_bytes = 4 * 1024;  // persistent cache can't absorb it
  options.statistics = stats.get();
  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());

  Model expected;
  Random64 rng(11);
  for (int i = 0; i < 3000; i++) {
    const std::string key = PrefixedKey(2, i);
    std::string value(120, '\0');
    for (char& c : value) c = static_cast<char>('a' + rng.Uniform(26));
    ASSERT_TRUE(store->Put(WriteOptions(), key, value).ok());
    expected[key] = value;
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  store->WaitForCompaction();

  ReadOptions ro;
  ro.scan_readahead_bytes = 256 * 1024;
  std::unique_ptr<Iterator> it = store->NewIterator(ro);
  it->SeekToFirst();
  ExpectMatchesModel(it.get(), expected, expected.begin(),
                     expected.size() + 1);

  EXPECT_GT(stats->GetTickerCount(SCAN_READAHEAD_ISSUED), 0u);
  EXPECT_GT(stats->GetTickerCount(SCAN_READAHEAD_HITS), 0u);
  EXPECT_GT(stats->GetTickerCount(SCAN_READAHEAD_BYTES), 0u);

  it.reset();
  store.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rocksmash
