// Semantics of the Status checked-bit discipline (see DESIGN.md,
// "Error-handling discipline").
//
// The compile-time half — [[nodiscard]] + -Werror=unused-result — cannot be
// exercised from a test. This file covers the runtime half: which operations
// count as observing a status, how copy/move transfer the obligation, and
// (under ROCKSMASH_ASSERT_STATUS_CHECKED) that dropping an unobserved non-OK
// status aborts. Outside ascheck builds the abort paths are compiled out and
// CheckedForTesting() is constant-true, so those expectations are gated.

#include "util/status.h"

#include <gtest/gtest.h>

#include <utility>

namespace rocksmash {
namespace {

#ifdef ROCKSMASH_ASSERT_STATUS_CHECKED
constexpr bool kAssertChecked = true;
#else
constexpr bool kAssertChecked = false;
#endif

TEST(StatusCheckTest, OkStatusNeedsNoObservation) {
  // An OK status carries no information; dropping it unobserved is fine in
  // every build mode.
  Status s = Status::OK();
  (void)s;
}

TEST(StatusCheckTest, ObserversMarkChecked) {
  {
    Status s = Status::IOError("a");
    EXPECT_EQ(s.CheckedForTesting(), !kAssertChecked);
    EXPECT_FALSE(s.ok());
    EXPECT_TRUE(s.CheckedForTesting());
  }
  {
    Status s = Status::NotFound("b");
    EXPECT_TRUE(s.IsNotFound());
    EXPECT_TRUE(s.CheckedForTesting());
  }
  {
    Status s = Status::Corruption("c");
    EXPECT_EQ(Status::Code::kCorruption, s.code());
    EXPECT_TRUE(s.CheckedForTesting());
  }
  {
    Status s = Status::Busy("d");
    EXPECT_EQ("Busy: d", s.ToString());
    EXPECT_TRUE(s.CheckedForTesting());
  }
}

TEST(StatusCheckTest, PermitUncheckedErrorMarksChecked) {
  Status s = Status::IOError("ignored on purpose");
  // why unchecked: this test is the check that permitting works.
  s.PermitUncheckedError();
  EXPECT_TRUE(s.CheckedForTesting());
}

TEST(StatusCheckTest, CopyTransfersObligation) {
  Status src = Status::IOError("x");
  Status copy(src);
  // The source is relieved; the copy now carries the obligation.
  EXPECT_TRUE(src.CheckedForTesting());
  EXPECT_EQ(copy.CheckedForTesting(), !kAssertChecked);
  EXPECT_TRUE(copy.IsIOError());
}

TEST(StatusCheckTest, CopyAssignTransfersObligation) {
  Status src = Status::IOError("x");
  Status dst;
  dst = src;
  EXPECT_TRUE(src.CheckedForTesting());
  EXPECT_EQ(dst.CheckedForTesting(), !kAssertChecked);
  EXPECT_TRUE(dst.IsIOError());
}

TEST(StatusCheckTest, MoveRelievesAndResetsSource) {
  Status src = Status::IOError("x");
  Status dst(std::move(src));
  // The moved-from status is OK and relieved in every build mode.
  EXPECT_TRUE(src.ok());
  EXPECT_TRUE(src.CheckedForTesting());
  EXPECT_EQ(dst.CheckedForTesting(), !kAssertChecked);
  EXPECT_TRUE(dst.IsIOError());
}

TEST(StatusCheckTest, MoveAssignRelievesAndResetsSource) {
  Status src = Status::Unavailable("x");
  Status dst;
  dst = std::move(src);
  EXPECT_TRUE(src.ok());
  EXPECT_EQ(dst.CheckedForTesting(), !kAssertChecked);
  EXPECT_TRUE(dst.IsUnavailable());
}

TEST(StatusCheckTest, ReturnPropagationKeepsObligationAlive) {
  auto fail = []() { return Status::IOError("propagated"); };
  auto forward = [&fail]() {
    Status inner = fail();
    return inner;  // copy/move out relieves `inner`, not the result
  };
  Status s = forward();
  EXPECT_EQ(s.CheckedForTesting(), !kAssertChecked);
  EXPECT_TRUE(s.IsIOError());
}

#ifdef ROCKSMASH_ASSERT_STATUS_CHECKED

TEST(StatusCheckDeathTest, DroppingUncheckedErrorAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      { Status s = Status::IOError("dropped"); },
      "non-OK Status destroyed without being checked");
}

TEST(StatusCheckDeathTest, AssigningOverUncheckedErrorAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Status s = Status::IOError("overwritten");
        s = Status::OK();  // aborts here, before the permit below runs
        // why unchecked: unreachable cleanup for the death-test expression.
        s.PermitUncheckedError();
      },
      "non-OK Status assigned over without being checked");
}

TEST(StatusCheckDeathTest, CheckedErrorDropsQuietly) {
  Status s = Status::IOError("seen");
  EXPECT_TRUE(s.IsIOError());
  // Destruction at scope exit must not abort: observation already happened.
}

#endif  // ROCKSMASH_ASSERT_STATUS_CHECKED

}  // namespace
}  // namespace rocksmash
