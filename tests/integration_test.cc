// Cross-module integration scenarios: tiering under compaction churn, cloud
// fault injection, cache warm restarts, cost accounting sanity, snapshot
// reads over cloud-resident data.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/kvstore.h"
#include "mash/rocksmash_db.h"
#include "util/clock.h"
#include "util/random.h"

namespace rocksmash {
namespace {

class MashIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rocksmash_integration";
    std::filesystem::remove_all(dir_);
    CloudLatencyModel model;
    model.jitter_micros = 0;
    model.get_first_byte_micros = 20;
    model.put_first_byte_micros = 20;
    cloud_ = NewMemObjectStore(&clock_, model);

    options_.local_dir = dir_;
    options_.cloud = cloud_.get();
    options_.cloud_level_start = 1;
    options_.write_buffer_size = 64 * 1024;
    options_.max_file_size = 64 * 1024;
    options_.persistent_cache_bytes = 1 << 20;
    ASSERT_TRUE(RocksMashDB::Open(options_, &db_).ok());
  }

  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  void Load(int n, const std::string& value_prefix = "value") {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i),
                           value_prefix + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    db_->WaitForCompaction();
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  RocksMashOptions options_;
  std::unique_ptr<RocksMashDB> db_;
};

TEST_F(MashIntegration, CompactionChurnInvalidatesCacheCorrectly) {
  Load(5000, "v1-");
  // Warm the persistent cache.
  std::string value;
  for (int i = 0; i < 5000; i += 7) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok());
  }
  const auto before = db_->Stats().cache;

  // Overwrite everything and force a full rewrite: compaction deletes the
  // old cloud SSTs, whose cache extents must be invalidated wholesale.
  Load(5000, "v2-");
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  const auto after = db_->Stats().cache;
  EXPECT_GT(after.invalidations, before.invalidations);

  // Reads must see only new values; stale cached blocks must never leak.
  for (int i = 0; i < 5000; i += 11) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok()) << i;
    EXPECT_EQ("v2-" + std::to_string(i), value) << i;
  }
}

TEST_F(MashIntegration, ReadsSurviveTransientCloudFailures) {
  Load(3000);
  auto* injectable = dynamic_cast<FaultInjectable*>(cloud_.get());
  ASSERT_NE(nullptr, injectable);
  CloudFaultPolicy policy;
  policy.fail_every_n = 5;  // 20% of cloud requests fail.
  injectable->SetFaultPolicy(policy);

  // Reads of cloud-resident blocks may fail when the GET fails; the engine
  // surfaces the error rather than corrupting. Cached blocks still serve.
  std::string value;
  int io_errors = 0, ok = 0;
  for (int i = 0; i < 3000; i += 13) {
    Status s = db_->Get(ReadOptions(), Key(i), &value);
    if (s.ok()) {
      EXPECT_EQ("value" + std::to_string(i), value);
      ok++;
    } else {
      EXPECT_TRUE(s.IsIOError() || s.IsUnavailable()) << s.ToString();
      io_errors++;
    }
  }
  EXPECT_GT(ok, 0);

  // After the fault clears, everything reads fine again.
  policy.fail_every_n = 0;
  injectable->SetFaultPolicy(policy);
  for (int i = 0; i < 3000; i += 13) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok()) << i;
  }
}

TEST_F(MashIntegration, MetadataRegionWarmAfterRestart) {
  Load(5000);
  auto stats_before = db_->Stats();
  ASSERT_GT(stats_before.cache.metadata.slabs, 0u);

  // Restart the whole stack over the same directories/cloud.
  db_.reset();
  ASSERT_TRUE(RocksMashDB::Open(options_, &db_).ok());

  auto stats_after_open = db_->Stats();
  // Slabs were reloaded from disk — warm before any read.
  EXPECT_EQ(stats_before.cache.metadata.slabs,
            stats_after_open.cache.metadata.slabs);

  const uint64_t cloud_gets_before = cloud_->Counters().gets;
  std::string value;
  for (int i = 0; i < 5000; i += 501) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok());
  }
  // Reads needed cloud GETs only for data blocks, not metadata: the number
  // of new GETs is bounded by the number of point reads (one data block
  // each), with no extra index/filter/footer fetches.
  const uint64_t new_gets = cloud_->Counters().gets - cloud_gets_before;
  EXPECT_LE(new_gets, 10u);
}

TEST_F(MashIntegration, SnapshotsOverCloudData) {
  Load(2000, "old-");
  const Snapshot* snap = db_->GetSnapshot();
  Load(2000, "new-");

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  for (int i = 0; i < 2000; i += 173) {
    ASSERT_TRUE(db_->Get(ro, Key(i), &value).ok());
    EXPECT_EQ("old-" + std::to_string(i), value);
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok());
    EXPECT_EQ("new-" + std::to_string(i), value);
  }
  db_->ReleaseSnapshot(snap);
}

TEST_F(MashIntegration, ScansOverTieredTree) {
  Load(5000);
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int n = 0;
  std::string prev;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    std::string k = it->key().ToString();
    EXPECT_LT(prev, k);
    prev = k;
    n++;
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(5000, n);
}

TEST_F(MashIntegration, CostAccountingTracksTiering) {
  Load(10000);
  auto stats = db_->Stats(/*hours_observed=*/1.0);
  // The deep tree lives in the cloud; shallow levels + metadata local.
  EXPECT_GT(stats.storage.cloud_bytes, stats.storage.local_bytes);
  EXPECT_GT(stats.monthly_cost.cloud_storage_usd, 0.0);
  EXPECT_GT(stats.monthly_cost.cloud_requests_usd, 0.0);

  // A LocalOnly store of the same data must cost more in storage $/GB
  // terms: compare per-byte prices through the meter directly.
  CostMeter meter(options_.price_card);
  ObjectStore::OpCounters no_ops;
  auto all_local = meter.MonthlyCost(0, stats.storage.cloud_bytes +
                                            stats.storage.local_bytes,
                                     no_ops, 1.0);
  EXPECT_GT(all_local.total(), stats.monthly_cost.cloud_storage_usd +
                                   stats.monthly_cost.local_storage_usd);
}

TEST_F(MashIntegration, DeleteAcrossTiers) {
  Load(3000);
  for (int i = 0; i < 3000; i += 2) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), Key(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();
  std::string value;
  for (int i = 0; i < 3000; i++) {
    Status s = db_->Get(ReadOptions(), Key(i), &value);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ("value" + std::to_string(i), value);
    }
  }
}

TEST_F(MashIntegration, PersistentCacheBudgetHolds) {
  options_.persistent_cache_bytes = 128 * 1024;  // Tight budget.
  db_.reset();
  std::filesystem::remove_all(dir_);
  ASSERT_TRUE(RocksMashDB::Open(options_, &db_).ok());

  // Incompressible values so block compression cannot shrink the working
  // set under the budget.
  Random64 rng(11);
  for (int i = 0; i < 10000; i++) {
    std::string value(64, '\0');
    for (char& c : value) c = static_cast<char>(rng.Next());
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();

  std::string value;
  for (int i = 0; i < 10000; i += 3) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok());
  }
  auto stats = db_->Stats().cache;
  EXPECT_LE(stats.data_bytes, 128u * 1024u);
  EXPECT_GT(stats.evicted_bytes, 0u);
}

}  // namespace
}  // namespace rocksmash
