// Tests for the log format (writer/reader) and the classic WalManager.
#include <gtest/gtest.h>

#include "env/env.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "lsm/wal.h"

namespace rocksmash {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  void Write(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/log", &file).ok());
    log::Writer writer(file.get());
    for (const auto& r : records) {
      ASSERT_TRUE(writer.AddRecord(r).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadAll(int* corruption_reports = nullptr) {
    struct CountingReporter : public log::Reader::Reporter {
      int count = 0;
      void Corruption(size_t, const Status&) override { count++; }
    } reporter;

    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile("/log", &file).ok());
    log::Reader reader(file.get(), &reporter);
    std::vector<std::string> result;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      result.push_back(record.ToString());
    }
    if (corruption_reports != nullptr) *corruption_reports = reporter.count;
    return result;
  }

  void CorruptByte(size_t offset, char xor_mask) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] ^= xor_mask;
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log").ok());
  }

  void Truncate(size_t new_size) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    contents.resize(new_size);
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log").ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(LogTest, EmptyLog) {
  Write({});
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(LogTest, SmallRecords) {
  Write({"foo", "bar", ""});
  auto records = ReadAll();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
}

TEST_F(LogTest, RecordSpanningBlocks) {
  // Larger than one 32 KiB block: forces FIRST/MIDDLE/LAST fragmentation.
  std::string big(100000, 'x');
  std::string medium(40000, 'y');
  Write({big, "small", medium});
  auto records = ReadAll();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ(big, records[0]);
  EXPECT_EQ("small", records[1]);
  EXPECT_EQ(medium, records[2]);
}

TEST_F(LogTest, ManyRecordsAcrossBlocks) {
  std::vector<std::string> records;
  for (int i = 0; i < 5000; i++) {
    records.push_back("record-" + std::to_string(i));
  }
  Write(records);
  auto read = ReadAll();
  ASSERT_EQ(records.size(), read.size());
  EXPECT_EQ(records.front(), read.front());
  EXPECT_EQ(records.back(), read.back());
}

TEST_F(LogTest, ChecksumCorruptionDropsRecord) {
  Write({"aaaa", "bbbb"});
  CorruptByte(log::kHeaderSize + 1, 0x01);  // Payload of first record.
  int reports = 0;
  auto records = ReadAll(&reports);
  EXPECT_GE(reports, 1);
  // The corrupted record is dropped; everything in the same block after a
  // bad crc is also dropped (length may be untrustworthy).
  for (const auto& r : records) {
    EXPECT_NE("aaaa", r);
  }
}

TEST_F(LogTest, TruncatedTailDroppedSilently) {
  Write({"aaaa", "bbbb"});
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
  Truncate(contents.size() - 2);  // Tear the last record.
  int reports = 0;
  auto records = ReadAll(&reports);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("aaaa", records[0]);
  EXPECT_EQ(0, reports);  // Torn tail is an expected crash artifact.
}

// ---------- Classic WalManager ----------

class ClassicWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    wal_ = NewClassicWalManager(env_.get(), "/db");
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<WalManager> wal_;
};

TEST_F(ClassicWalTest, WriteAndReplay) {
  ASSERT_TRUE(wal_->NewLog(5).ok());
  ASSERT_TRUE(wal_->AddRecord("record1").ok());
  ASSERT_TRUE(wal_->AddRecord("record2").ok());
  ASSERT_TRUE(wal_->Sync().ok());
  ASSERT_TRUE(wal_->CloseLog().ok());

  std::vector<std::string> replayed;
  ASSERT_TRUE(wal_
                  ->Replay(5,
                           [&](const Slice& record, int shard) {
                             EXPECT_EQ(0, shard);
                             replayed.push_back(record.ToString());
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(2u, replayed.size());
  EXPECT_EQ("record1", replayed[0]);
  EXPECT_EQ("record2", replayed[1]);
}

TEST_F(ClassicWalTest, ListAndRemove) {
  ASSERT_TRUE(wal_->NewLog(3).ok());
  ASSERT_TRUE(wal_->AddRecord("x").ok());
  ASSERT_TRUE(wal_->NewLog(7).ok());
  ASSERT_TRUE(wal_->AddRecord("y").ok());
  ASSERT_TRUE(wal_->CloseLog().ok());

  std::vector<uint64_t> logs;
  ASSERT_TRUE(wal_->ListLogs(&logs).ok());
  ASSERT_EQ(2u, logs.size());
  EXPECT_EQ(3u, logs[0]);
  EXPECT_EQ(7u, logs[1]);

  ASSERT_TRUE(wal_->RemoveLog(3).ok());
  ASSERT_TRUE(wal_->ListLogs(&logs).ok());
  ASSERT_EQ(1u, logs.size());
  EXPECT_EQ(7u, logs[0]);
}

TEST_F(ClassicWalTest, MaxShardsIsOne) { EXPECT_EQ(1, wal_->MaxShards()); }

TEST_F(ClassicWalTest, AddRecordWithoutOpenLogFails) {
  EXPECT_FALSE(wal_->AddRecord("x").ok());
}

}  // namespace
}  // namespace rocksmash
