// Tests for cloud scan read-ahead: sequential block reads of a cloud SST
// must cost one range GET per window, not one per block.
#include <gtest/gtest.h>

#include <filesystem>

#include "cloud/object_store.h"
#include "env/env.h"
#include "mash/placement.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "util/clock.h"
#include "util/random.h"

namespace rocksmash {
namespace {

class ReadaheadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rocksmash_readahead";
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirRecursively(dir_).ok());
    CloudLatencyModel model;
    model.jitter_micros = 0;
    model.get_first_byte_micros = 1;
    model.put_first_byte_micros = 1;
    cloud_ = NewMemObjectStore(&clock_, model);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Builds a ~500 KiB SST of incompressible-ish data at cloud level.
  void BuildCloudTable(TieredTableStorage* storage, uint64_t number) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(storage->NewStagingFile(number, &file).ok());
    TableOptions topt;
    TableBuilder builder(topt, file.get());
    Random64 rng(4);
    for (int i = 0; i < 3000; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key%08d", i);
      std::string value(128, '\0');
      for (char& c : value) c = static_cast<char>(rng.Next());
      builder.Add(key, value);
    }
    ASSERT_TRUE(builder.Finish().ok());
    size_ = builder.FileSize();
    metadata_offset_ = builder.MetadataOffset();
    ASSERT_TRUE(file->Close().ok());
    ASSERT_TRUE(storage->Install(number, 3, size_, metadata_offset_).ok());
  }

  uint64_t ScanAndCountGets(TieredTableStorage* storage, uint64_t number) {
    std::unique_ptr<BlockSource> source;
    uint64_t got_size;
    EXPECT_TRUE(storage->OpenTable(number, &source, &got_size).ok());
    std::unique_ptr<Table> table;
    EXPECT_TRUE(Table::Open(TableOptions(), std::move(source), size_, nullptr,
                            1, &table)
                    .ok());
    const uint64_t gets_before = cloud_->Counters().gets;
    std::unique_ptr<Iterator> it(table->NewIterator());
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
    EXPECT_EQ(3000, n);
    EXPECT_TRUE(it->status().ok());
    return cloud_->Counters().gets - gets_before;
  }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  uint64_t size_ = 0;
  uint64_t metadata_offset_ = 0;
};

TEST_F(ReadaheadTest, ScanCostsOneGetPerWindow) {
  TieredStorageOptions with;
  with.local_dir = dir_ + "/with";
  with.cloud = cloud_.get();
  with.cloud_level_start = 0;
  with.cloud_prefix = "with";
  with.cloud_readahead_bytes = 128 * 1024;
  TieredTableStorage storage_with(with);
  BuildCloudTable(&storage_with, 1);
  const uint64_t gets_with = ScanAndCountGets(&storage_with, 1);

  TieredStorageOptions without = with;
  without.local_dir = dir_ + "/without";
  without.cloud_prefix = "without";
  without.cloud_readahead_bytes = 0;
  TieredTableStorage storage_without(without);
  BuildCloudTable(&storage_without, 2);
  const uint64_t gets_without = ScanAndCountGets(&storage_without, 2);

  // ~500 KiB of data blocks: with 128 KiB windows a handful of GETs; one
  // per 4 KiB block without.
  EXPECT_LT(gets_with * 10, gets_without);
  EXPECT_LE(gets_with, 8u);
  EXPECT_GT(gets_without, 80u);
}

TEST_F(ReadaheadTest, ReadaheadDataIsCorrect) {
  TieredStorageOptions opts;
  opts.local_dir = dir_ + "/verify";
  opts.cloud = cloud_.get();
  opts.cloud_level_start = 0;
  opts.cloud_readahead_bytes = 64 * 1024;
  TieredTableStorage storage(opts);
  BuildCloudTable(&storage, 3);

  std::unique_ptr<BlockSource> source;
  uint64_t got_size;
  ASSERT_TRUE(storage.OpenTable(3, &source, &got_size).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(TableOptions(), std::move(source), size_, nullptr,
                          1, &table)
                  .ok());

  // Values are deterministic from the same RNG sequence the builder used;
  // block checksums verify every byte served from the readahead buffer, so
  // a full clean scan plus spot point-gets suffices.
  std::unique_ptr<Iterator> it(table->NewIterator());
  std::string prev;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    std::string k = it->key().ToString();
    ASSERT_LT(prev, k);
    ASSERT_EQ(128u, it->value().size());
    prev = k;
  }
  ASSERT_TRUE(it->status().ok());

  for (int i = 0; i < 3000; i += 307) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    it->Seek(key);
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(key, it->key().ToString());
  }
}

}  // namespace
}  // namespace rocksmash
