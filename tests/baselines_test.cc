// Tests for the baseline schemes behind the common KVStore interface.
#include "baselines/kvstore.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "env/env.h"
#include "util/clock.h"

namespace rocksmash {
namespace {

class SchemeTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rocksmash_scheme_" +
           std::string(SchemeName(GetParam()));
    std::filesystem::remove_all(dir_);

    CloudLatencyModel model;
    model.jitter_micros = 0;
    // Keep modeled latencies tiny so tests stay fast but the code path is
    // identical to the benches.
    model.get_first_byte_micros = 10;
    model.put_first_byte_micros = 10;
    cloud_ = NewMemObjectStore(&clock_, model);

    options_.kind = GetParam();
    options_.local_dir = dir_;
    options_.cloud =
        GetParam() == SchemeKind::kLocalOnly ? nullptr : cloud_.get();
    options_.write_buffer_size = 64 * 1024;
    options_.max_file_size = 64 * 1024;
    options_.local_cache_bytes = 1 << 20;
    options_.cloud_level_start = 1;
    ASSERT_TRUE(OpenKVStore(options_, &store_).ok());
  }

  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  SchemeOptions options_;
  std::unique_ptr<KVStore> store_;
};

TEST_P(SchemeTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v").ok());
  std::string value;
  ASSERT_TRUE(store_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("v", value);
  ASSERT_TRUE(store_->Delete(WriteOptions(), "k").ok());
  EXPECT_TRUE(store_->Get(ReadOptions(), "k", &value).IsNotFound());
}

TEST_P(SchemeTest, SurvivesFlushAndCompaction) {
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(store_
                    ->Put(WriteOptions(), "key" + std::to_string(i),
                          "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  store_->WaitForCompaction();
  std::string value;
  for (int i = 0; i < 4000; i += 97) {
    ASSERT_TRUE(
        store_->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("value" + std::to_string(i), value);
  }
}

TEST_P(SchemeTest, IteratorScan) {
  for (int i = 0; i < 1000; i++) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), buf, "v").ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  std::unique_ptr<Iterator> it(store_->NewIterator(ReadOptions()));
  it->Seek("key000500");
  int n = 0;
  while (it->Valid() && n < 100) {
    it->Next();
    n++;
  }
  EXPECT_EQ(100, n);
  EXPECT_TRUE(it->status().ok());
}

TEST_P(SchemeTest, StatsReportStorageTier) {
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(store_
                    ->Put(WriteOptions(), "key" + std::to_string(i),
                          std::string(100, 'v'))
                    .ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  store_->WaitForCompaction();
  auto stats = store_->Stats();
  if (GetParam() == SchemeKind::kLocalOnly) {
    EXPECT_GT(stats.storage.local_files, 0u);
    EXPECT_EQ(0u, stats.storage.cloud_files);
  } else {
    EXPECT_GT(stats.storage.cloud_files, 0u);
    EXPECT_GT(stats.cloud_ops.puts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTest,
    ::testing::Values(SchemeKind::kLocalOnly, SchemeKind::kCloudOnly,
                      SchemeKind::kCloudSstCache, SchemeKind::kRocksMash),
    [](const ::testing::TestParamInfo<SchemeKind>& param_info) {
      return SchemeName(param_info.param);
    });

TEST(CloudSstCacheTest, FileCacheHitsOnRepeatedOpen) {
  std::string dir = ::testing::TempDir() + "/rocksmash_sstcache_direct";
  std::filesystem::remove_all(dir);
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  SchemeOptions options;
  options.kind = SchemeKind::kCloudSstCache;
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.write_buffer_size = 32 * 1024;
  options.max_file_size = 32 * 1024;
  options.local_cache_bytes = 10 << 20;
  // Tiny table-reader cache effect: read the same keys repeatedly.
  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        store->Put(WriteOptions(), "key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  store->WaitForCompaction();
  std::string value;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 3000; i += 301) {
      ASSERT_TRUE(
          store->Get(ReadOptions(), "key" + std::to_string(i), &value).ok());
    }
  }
  auto stats = store->Stats();
  // Whole files were downloaded at least once; local cache holds bytes.
  EXPECT_GT(stats.storage.downloads, 0u);
  EXPECT_GT(stats.storage.local_bytes, 0u);
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST(CloudSstCacheTest, EvictionBoundsCacheBytes) {
  std::string dir = ::testing::TempDir() + "/rocksmash_sstcache_evict";
  std::filesystem::remove_all(dir);
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  auto stats = std::make_shared<SstFileCacheStats>();
  auto storage = NewCloudSstCacheStorage(Env::Default(), dir, cloud.get(),
                                         "tables", /*budget=*/4096, stats);

  // Create three small "tables" via staging + install, then open them all.
  for (uint64_t n = 1; n <= 3; n++) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(storage->NewStagingFile(n, &f).ok());
    ASSERT_TRUE(f->Append(std::string(3000, 'a' + n)).ok());
    ASSERT_TRUE(f->Close().ok());
    ASSERT_TRUE(storage->Install(n, 1, 3000, 0).ok());
  }
  std::unique_ptr<BlockSource> source;
  uint64_t size;
  for (uint64_t n = 1; n <= 3; n++) {
    ASSERT_TRUE(storage->OpenTable(n, &source, &size).ok());
    EXPECT_EQ(3000u, size);
  }
  // Budget 4096 holds at most one 3000-byte file plus the newest.
  EXPECT_GT(stats->evictions, 0u);
  EXPECT_LE(storage->GetStats().local_bytes, 2u * 3000u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rocksmash
