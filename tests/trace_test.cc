// Tests for the tracing subsystem (capture -> parse -> replay):
//   - StartTrace/EndTrace lifecycle and error cases;
//   - round-trip fidelity: a randomized mixed workload captured at
//     sampling=1 replays into a fresh DB with identical final state and
//     identical per-type op counts (the ISSUE acceptance criterion);
//   - recorded thread structure preserved across replay;
//   - sampling ratios honored;
//   - corruption discipline: truncated (including mid-record) and bit-
//     flipped traces parse to Status::Corruption and replay issues nothing;
//   - max_trace_file_size cap counts drops instead of growing the file;
//   - implicit EndTrace at Close;
//   - backend spans exported as well-formed Chrome trace-event JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/write_batch.h"
#include "trace/replayer.h"
#include "trace/trace_reader.h"
#include "trace/trace_tools.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string TestDir(const char* suffix) {
  std::string dir = ::testing::TempDir() + "/rocksmash_trace_" + suffix;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string KeyOf(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%08llu", (unsigned long long)i);
  return buf;
}

std::unique_ptr<DB> OpenSmallDB(const std::string& dbname,
                                Statistics* stats = nullptr) {
  DBOptions options;
  options.create_if_missing = true;
  options.write_buffer_size = 64 * 1024;
  options.max_file_size = 64 * 1024;
  options.max_bytes_for_level_base = 256 * 1024;
  options.statistics = stats;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dbname, &db);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

// Full user-visible contents of the DB, for final-state equivalence.
std::map<std::string, std::string> DumpAll(DB* db) {
  std::map<std::string, std::string> out;
  auto it = db->NewIterator(ReadOptions());
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out[it->key().ToString()] = it->value().ToString();
  }
  EXPECT_TRUE(it->status().ok());
  return out;
}

// Randomized mixed workload covering every traced op type. Deterministic in
// `seed`, so capture-side expectations are reproducible.
void RunMixedWorkload(DB* db, uint32_t seed, int ops) {
  Random64 rnd(seed);
  WriteOptions wo;
  ReadOptions ro;
  for (int i = 0; i < ops; i++) {
    const uint64_t k = rnd.Uniform(500);
    switch (rnd.Uniform(7)) {
      case 0:
      case 1:
        ASSERT_TRUE(db->Put(wo, KeyOf(k), "v" + std::to_string(i)).ok());
        break;
      case 2:
        ASSERT_TRUE(db->Delete(wo, KeyOf(k)).ok());
        break;
      case 3: {
        WriteBatch batch;
        batch.Put(KeyOf(k), "b" + std::to_string(i));
        batch.Put(KeyOf(k + 500), "b2");
        batch.Delete(KeyOf(k + 1000));
        ASSERT_TRUE(db->Write(wo, &batch).ok());
        break;
      }
      case 4: {
        std::string value;
        Status s = db->Get(ro, KeyOf(k), &value);
        ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
        break;
      }
      case 5: {
        std::vector<Slice> keys;
        std::vector<std::string> key_storage;
        key_storage.reserve(3);
        for (int j = 0; j < 3; j++) {
          key_storage.push_back(KeyOf(rnd.Uniform(1500)));
        }
        for (const auto& key : key_storage) keys.emplace_back(key);
        std::vector<std::string> values;
        std::vector<Status> statuses;
        db->MultiGet(ro, keys, &values, &statuses);
        for (Status& s : statuses) {
          ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
        }
        break;
      }
      default: {
        auto it = db->NewIterator(ro);
        it->Seek(KeyOf(k));
        for (int j = 0; j < 4 && it->Valid(); j++) it->Next();
        it->SeekToFirst();
        ASSERT_TRUE(it->status().ok());
        break;
      }
    }
  }
}

uint64_t ReadWholeFile(const std::string& path, std::string* out) {
  Status s = ReadFileToString(Env::Default(), path, out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out->size();
}

TEST(TraceTest, StartEndLifecycleAndErrors) {
  const std::string dbname = TestDir("lifecycle");
  auto db = OpenSmallDB(dbname);

  // No trace active yet.
  EXPECT_TRUE(db->EndTrace().IsInvalidArgument());

  trace::TraceOptions topts;
  ASSERT_TRUE(db->StartTrace(topts, dbname + "/t1.trace").ok());
  // Double start is rejected; the original capture stays live.
  EXPECT_TRUE(db->StartTrace(topts, dbname + "/t2.trace").IsInvalidArgument());
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db->EndTrace().ok());
  EXPECT_TRUE(db->EndTrace().IsInvalidArgument());

  // A fresh capture on the same DB works after the first ended.
  ASSERT_TRUE(db->StartTrace(topts, dbname + "/t2.trace").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "b", "2").ok());
  ASSERT_TRUE(db->EndTrace().ok());

  trace::TraceStats stats;
  ASSERT_TRUE(
      trace::TraceFileStats(Env::Default(), dbname + "/t1.trace", &stats)
          .ok());
  EXPECT_EQ(stats.op_counts[trace::kTracePut], 1u);
  ASSERT_TRUE(
      trace::TraceFileStats(Env::Default(), dbname + "/t2.trace", &stats)
          .ok());
  EXPECT_EQ(stats.op_counts[trace::kTracePut], 1u);
}

TEST(TraceTest, RoundTripFidelity) {
  const std::string capture_dir = TestDir("fidelity_capture");
  const std::string replay_dir = TestDir("fidelity_replay");
  const std::string trace_path = capture_dir + "/run.trace";

  auto capture_db = OpenSmallDB(capture_dir);
  trace::TraceOptions topts;
  topts.sampling_frequency = 1;
  ASSERT_TRUE(capture_db->StartTrace(topts, trace_path).ok());
  RunMixedWorkload(capture_db.get(), /*seed=*/301, /*ops=*/1500);
  ASSERT_TRUE(capture_db->EndTrace().ok());

  trace::TraceStats stats;
  ASSERT_TRUE(
      trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_GT(stats.op_counts[trace::kTracePut], 0u);
  EXPECT_GT(stats.op_counts[trace::kTraceWriteBatch], 0u);
  EXPECT_GT(stats.op_counts[trace::kTraceMultiGet], 0u);
  EXPECT_GT(stats.op_counts[trace::kTraceIterSeek], 0u);

  auto replay_db = OpenSmallDB(replay_dir);
  trace::ReplayOptions ropts;
  ropts.fast_forward = 0;
  trace::Replayer replayer(replay_db.get(), ropts);
  trace::ReplayResult rr;
  ASSERT_TRUE(replayer.Replay(Env::Default(), trace_path, &rr).ok());
  EXPECT_EQ(rr.errors, 0u);

  // Per-type op counts match the capture exactly (sampling=1).
  for (uint32_t t = trace::kTracePut; t <= trace::kTraceIterNext; t++) {
    EXPECT_EQ(rr.op_counts[t], stats.op_counts[t])
        << trace::TraceRecordTypeName(static_cast<uint8_t>(t));
  }

  // Final user-visible state converges.
  EXPECT_EQ(DumpAll(capture_db.get()), DumpAll(replay_db.get()));
}

TEST(TraceTest, MultiThreadedCaptureKeepsThreadStructure) {
  const std::string capture_dir = TestDir("threads_capture");
  const std::string replay_dir = TestDir("threads_replay");
  const std::string trace_path = capture_dir + "/run.trace";
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 300;

  auto capture_db = OpenSmallDB(capture_dir);
  ASSERT_TRUE(capture_db->StartTrace(trace::TraceOptions(), trace_path).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&capture_db, t] {
      WriteOptions wo;
      for (uint64_t i = 0; i < kOpsPerThread; i++) {
        const uint64_t k = static_cast<uint64_t>(t) * kOpsPerThread + i;
        ASSERT_TRUE(capture_db->Put(wo, KeyOf(k), "t" + std::to_string(t)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(capture_db->EndTrace().ok());

  trace::TraceStats stats;
  ASSERT_TRUE(trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  EXPECT_EQ(stats.op_counts[trace::kTracePut], kThreads * kOpsPerThread);
  EXPECT_GE(stats.threads, static_cast<uint64_t>(kThreads));

  auto replay_db = OpenSmallDB(replay_dir);
  trace::Replayer replayer(replay_db.get(), trace::ReplayOptions());
  trace::ReplayResult rr;
  ASSERT_TRUE(replayer.Replay(Env::Default(), trace_path, &rr).ok());
  EXPECT_EQ(rr.op_counts[trace::kTracePut], kThreads * kOpsPerThread);
  // One replay thread per recorded op-issuing thread.
  EXPECT_GE(rr.threads, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(DumpAll(capture_db.get()), DumpAll(replay_db.get()));
}

TEST(TraceTest, SamplingFrequencyHonored) {
  const std::string dbname = TestDir("sampling");
  const std::string trace_path = dbname + "/run.trace";
  auto db = OpenSmallDB(dbname);

  trace::TraceOptions topts;
  topts.sampling_frequency = 4;
  ASSERT_TRUE(db->StartTrace(topts, trace_path).ok());
  constexpr uint64_t kPuts = 1000;
  for (uint64_t i = 0; i < kPuts; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), "v").ok());
  }
  ASSERT_TRUE(db->EndTrace().ok());

  trace::TraceStats stats;
  ASSERT_TRUE(trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  // Single-threaded: the per-thread counter records exactly 1 of every 4.
  EXPECT_EQ(stats.op_counts[trace::kTracePut], kPuts / 4);
  EXPECT_EQ(stats.sampling_frequency, 4u);
}

TEST(TraceTest, TruncatedAndCorruptTracesAreCorruption) {
  const std::string dbname = TestDir("corrupt");
  const std::string trace_path = dbname + "/run.trace";
  auto db = OpenSmallDB(dbname);
  ASSERT_TRUE(db->StartTrace(trace::TraceOptions(), trace_path).ok());
  for (uint64_t i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), "value-" + KeyOf(i)).ok());
  }
  ASSERT_TRUE(db->EndTrace().ok());

  std::string whole;
  const uint64_t size = ReadWholeFile(trace_path, &whole);
  ASSERT_GT(size, 64u);

  // Any truncation point must fail parsing: mid-payload, mid-framing, and
  // exactly at a record boundary (missing footer).
  for (const size_t cut : {size - 1, size / 2, size / 3, (size_t)17}) {
    std::unique_ptr<trace::TraceReader> reader;
    Status open = trace::TraceReader::FromBuffer(whole.substr(0, cut), &reader);
    if (open.ok()) {
      trace::TraceRecord rec;
      bool eof = false;
      Status st;
      while ((st = reader->Next(&rec, &eof)).ok() && !eof) {
      }
      EXPECT_TRUE(st.IsCorruption()) << "cut=" << cut << " " << st.ToString();
    } else {
      EXPECT_TRUE(open.IsCorruption()) << "cut=" << cut;
    }
  }

  // A flipped payload byte breaks the record CRC.
  std::string flipped = whole;
  flipped[flipped.size() / 2] ^= 0x20;
  {
    std::unique_ptr<trace::TraceReader> reader;
    Status open = trace::TraceReader::FromBuffer(flipped, &reader);
    if (open.ok()) {
      trace::TraceRecord rec;
      bool eof = false;
      Status st;
      while ((st = reader->Next(&rec, &eof)).ok() && !eof) {
      }
      EXPECT_TRUE(st.IsCorruption()) << st.ToString();
    } else {
      EXPECT_TRUE(open.IsCorruption());
    }
  }

  // Replaying a mid-record-truncated trace is Corruption and issues nothing:
  // the whole trace must parse before the first op goes to the DB.
  const std::string replay_dir = TestDir("corrupt_replay");
  auto replay_db = OpenSmallDB(replay_dir);
  trace::Replayer replayer(replay_db.get(), trace::ReplayOptions());
  trace::ReplayResult rr;
  Status rs = replayer.ReplayFromBuffer(whole.substr(0, size / 2), &rr);
  EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
  EXPECT_EQ(rr.ops_issued, 0u);
  EXPECT_TRUE(DumpAll(replay_db.get()).empty());
}

TEST(TraceTest, MaxFileSizeCapCountsDrops) {
  const std::string dbname = TestDir("cap");
  const std::string trace_path = dbname + "/run.trace";
  auto db = OpenSmallDB(dbname);

  trace::TraceOptions topts;
  topts.max_trace_file_size = 8 * 1024;
  topts.trace_spans = false;
  ASSERT_TRUE(db->StartTrace(topts, trace_path).ok());
  for (uint64_t i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), std::string(64, 'x')).ok());
  }
  ASSERT_TRUE(db->EndTrace().ok());

  // The capped file still parses cleanly (header + footer intact) and the
  // footer owns up to the drops.
  trace::TraceStats stats;
  ASSERT_TRUE(trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  EXPECT_GT(stats.records_dropped, 0u);
  EXPECT_LT(stats.records_written, 2000u);
}

TEST(TraceTest, ImplicitEndTraceAtClose) {
  const std::string dbname = TestDir("implicit_end");
  const std::string trace_path = dbname + "/run.trace";
  {
    auto db = OpenSmallDB(dbname);
    ASSERT_TRUE(db->StartTrace(trace::TraceOptions(), trace_path).ok());
    for (uint64_t i = 0; i < 20; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), "v").ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  // Close finalized the capture: the file has its footer and parses whole.
  trace::TraceStats stats;
  ASSERT_TRUE(trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  EXPECT_EQ(stats.op_counts[trace::kTracePut], 20u);
}

TEST(TraceTest, SpansCapturedAndChromeExportWellFormed) {
  const std::string dbname = TestDir("spans");
  const std::string trace_path = dbname + "/run.trace";
  auto db = OpenSmallDB(dbname);

  trace::TraceOptions topts;
  topts.trace_spans = true;
  ASSERT_TRUE(db->StartTrace(topts, trace_path).ok());
  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (uint64_t i = 0; i < 300; i++) {
    ASSERT_TRUE(
        db->Put(i % 50 == 0 ? sync_wo : WriteOptions(), KeyOf(i),
                std::string(256, 'v'))
            .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();
  ASSERT_TRUE(db->EndTrace().ok());

  trace::TraceStats stats;
  ASSERT_TRUE(trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  EXPECT_GT(stats.span_counts[trace::kSpanWalSync], 0u);
  EXPECT_GT(stats.span_counts[trace::kSpanFlush], 0u);

  std::string chrome;
  ASSERT_TRUE(
      trace::TraceFileToChrome(Env::Default(), trace_path, &chrome).ok());
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(chrome.substr(chrome.size() - 3), "]}\n");
  EXPECT_NE(chrome.find("\"wal_sync\""), std::string::npos);
  EXPECT_NE(chrome.find("\"flush\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  // Balanced braces/brackets outside strings — cheap structural JSON check.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < chrome.size(); i++) {
    const char c = chrome[i];
    if (in_string) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') depth++;
    if (c == '}' || c == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceTest, TracingIteratorForwardsResults) {
  const std::string dbname = TestDir("iter_forward");
  auto db = OpenSmallDB(dbname);
  for (uint64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), "v" + KeyOf(i)).ok());
  }

  // Contents read through a traced iterator equal the untraced view.
  const std::map<std::string, std::string> before = DumpAll(db.get());
  ASSERT_TRUE(
      db->StartTrace(trace::TraceOptions(), dbname + "/run.trace").ok());
  EXPECT_EQ(DumpAll(db.get()), before);
  auto it = db->NewIterator(ReadOptions());
  it->Seek(KeyOf(50));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), KeyOf(50));
  it->Prev();  // Untraced but must still work through the wrapper.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), KeyOf(49));
  it.reset();
  ASSERT_TRUE(db->EndTrace().ok());

  trace::TraceStats stats;
  ASSERT_TRUE(
      trace::TraceFileStats(Env::Default(), dbname + "/run.trace", &stats)
          .ok());
  EXPECT_GT(stats.op_counts[trace::kTraceNewIterator], 0u);
  EXPECT_GT(stats.op_counts[trace::kTraceIterNext], 0u);
}

TEST(TraceTest, PacedReplayCompletes) {
  const std::string capture_dir = TestDir("paced_capture");
  const std::string replay_dir = TestDir("paced_replay");
  const std::string trace_path = capture_dir + "/run.trace";

  auto capture_db = OpenSmallDB(capture_dir);
  ASSERT_TRUE(capture_db->StartTrace(trace::TraceOptions(), trace_path).ok());
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(capture_db->Put(WriteOptions(), KeyOf(i), "v").ok());
  }
  ASSERT_TRUE(capture_db->EndTrace().ok());

  auto replay_db = OpenSmallDB(replay_dir);
  trace::ReplayOptions ropts;
  ropts.fast_forward = 100.0;  // Scaled pacing, but quick in CI.
  trace::Replayer replayer(replay_db.get(), ropts);
  trace::ReplayResult rr;
  ASSERT_TRUE(replayer.Replay(Env::Default(), trace_path, &rr).ok());
  EXPECT_EQ(rr.op_counts[trace::kTracePut], 200u);
  EXPECT_EQ(DumpAll(capture_db.get()), DumpAll(replay_db.get()));
}

TEST(TraceTest, TracingOffPathUnaffected) {
  const std::string dbname = TestDir("off_path");
  auto db = OpenSmallDB(dbname);
  // No trace ever started: the full op surface works through the same
  // entry points that carry the tracer check (one relaxed load each).
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), "v").ok());
  }
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(7), &value).ok());
  EXPECT_EQ(value, "v");
  auto it = db->NewIterator(ReadOptions());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  it.reset();

  // Statistics stay silent: no trace tickers tick while tracing is off.
  auto stats_db_dir = TestDir("off_path_stats");
  auto statistics = CreateDBStatistics();
  auto stats_db = OpenSmallDB(stats_db_dir, statistics.get());
  ASSERT_TRUE(stats_db->Put(WriteOptions(), "k", "v").ok());
  EXPECT_EQ(statistics->GetTickerCount(TRACE_RECORDS_WRITTEN), 0u);
  EXPECT_EQ(statistics->GetTickerCount(TRACE_RECORDS_DROPPED), 0u);
}

}  // namespace
}  // namespace rocksmash
