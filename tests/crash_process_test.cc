// Real crash-safety test: a forked child process writes synced records and
// is SIGKILLed mid-stream; the parent recovers the store and verifies that
// every write the child acknowledged (recorded durably *after* the synced
// Put) survived. Runs against both the classic WAL and the eWAL.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "mash/ewal.h"
#include "util/clock.h"

namespace rocksmash {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string Value(uint64_t i) {
  return "value-" + std::to_string(i) + std::string(100, 'v');
}

std::unique_ptr<WalManager> MakeWal(int segments, const std::string& dbname) {
  if (segments <= 1) {
    return NewClassicWalManager(Env::Default(), dbname);
  }
  EWalOptions ew;
  ew.segments = segments;
  return NewEWalManager(Env::Default(), dbname, ew);
}

// Atomically publish progress = highest index whose write was acked+synced.
void PublishProgress(const std::string& path, uint64_t progress) {
  const std::string tmp = path + ".tmp";
  // Runs in the to-be-SIGKILLed child: a failed publish would let the
  // parent expect keys the child never durably wrote, so die instead.
  if (!WriteStringToFile(Env::Default(), std::to_string(progress), tmp,
                         /*sync=*/true)
           .ok() ||
      !Env::Default()->RenameFile(tmp, path).ok()) {
    _exit(3);
  }
}

uint64_t ReadProgress(const std::string& path) {
  std::string contents;
  if (!ReadFileToString(Env::Default(), path, &contents).ok() ||
      contents.empty()) {
    return 0;
  }
  return std::strtoull(contents.c_str(), nullptr, 10);
}

class ProcessCrash : public ::testing::TestWithParam<int> {};

TEST_P(ProcessCrash, SigkillLosesNoAckedWrites) {
  const int segments = GetParam();
  const std::string workdir = ::testing::TempDir() + "/rocksmash_sigkill_" +
                              std::to_string(segments);
  std::filesystem::remove_all(workdir);
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(workdir).ok());
  const std::string dbname = workdir + "/db";
  const std::string progress_path = workdir + "/progress";
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());

  pid_t child = fork();
  ASSERT_GE(child, 0);

  if (child == 0) {
    // ---- Child: write synced records until killed. ----
    auto wal = MakeWal(segments, dbname);
    DBOptions options;
    options.wal_manager = wal.get();
    options.write_buffer_size = 64 << 20;  // Keep everything in the WAL.
    std::unique_ptr<DB> db;
    if (!DB::Open(options, dbname, &db).ok()) {
      _exit(2);
    }
    WriteOptions sync;
    sync.sync = true;
    // Publish progress only AFTER the synced write: everything <= progress
    // is acked-durable by contract.
    for (uint64_t i = 0; i < 200000; i++) {
      if (!db->Put(sync, Key(i), Value(i)).ok()) {
        _exit(3);
      }
      if (i % 16 == 0) {
        PublishProgress(progress_path, i);
      }
    }
    _exit(0);  // Wrote everything before the parent killed us (unlikely).
  }

  // ---- Parent: wait for real progress, then SIGKILL mid-stream. ----
  SystemClock* clock = SystemClock::Default();
  const uint64_t deadline = clock->NowMicros() + 30 * 1000000ull;
  while (ReadProgress(progress_path) < 500 && clock->NowMicros() < deadline) {
    clock->SleepMicros(20000);
  }
  ASSERT_GE(ReadProgress(progress_path), 500u) << "child made no progress";
  // Let it run a little longer so the kill lands mid-write.
  clock->SleepMicros(100000);
  kill(child, SIGKILL);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited on its own";

  const uint64_t acked = ReadProgress(progress_path);
  ASSERT_GE(acked, 500u);

  // ---- Recover and verify: nothing acked may be missing or wrong. ----
  auto wal = MakeWal(segments, dbname);
  DBOptions options;
  options.wal_manager = wal.get();
  options.write_buffer_size = 64 << 20;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  std::string value;
  uint64_t lost = 0;
  for (uint64_t i = 0; i <= acked; i++) {
    Status s = db->Get(ReadOptions(), Key(i), &value);
    if (!s.ok() || value != Value(i)) {
      lost++;
    }
  }
  EXPECT_EQ(0u, lost) << "of " << acked + 1 << " acked writes";

  db.reset();
  std::filesystem::remove_all(workdir);
}

// Same crash contract, but the child runs the pipelined write front-end
// with four concurrent writers: groups form across threads, the WAL record
// is one leader-built blob, and the apply stage runs in parallel. A
// SIGKILL can land between a group's WAL sync and its memtable publish —
// recovery (including the eWAL's parallel replay) must still surface every
// write any thread acked.
TEST_P(ProcessCrash, SigkillWithConcurrentWritersLosesNoAckedWrites) {
  const int segments = GetParam();
  constexpr int kWriters = 4;
  constexpr uint64_t kRange = 1 << 30;  // Per-thread key spaces never meet.
  const std::string workdir = ::testing::TempDir() + "/rocksmash_sigkill_mt_" +
                              std::to_string(segments);
  std::filesystem::remove_all(workdir);
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(workdir).ok());
  const std::string dbname = workdir + "/db";
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());
  auto progress_path = [&workdir](int w) {
    return workdir + "/progress." + std::to_string(w);
  };

  pid_t child = fork();
  ASSERT_GE(child, 0);

  if (child == 0) {
    // ---- Child: 4 threads write synced records until killed. ----
    auto wal = MakeWal(segments, dbname);
    DBOptions options;
    options.wal_manager = wal.get();
    options.enable_pipelined_write = true;
    options.allow_concurrent_memtable_write = true;
    options.write_buffer_size = 64 << 20;  // Keep everything in the WAL.
    std::unique_ptr<DB> db;
    if (!DB::Open(options, dbname, &db).ok()) {
      _exit(2);
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
      writers.emplace_back([&db, &progress_path, w] {
        WriteOptions sync;
        sync.sync = true;
        const uint64_t base = static_cast<uint64_t>(w) * kRange;
        // Publish per-thread progress only AFTER the synced write:
        // everything <= progress in this thread's range is acked-durable.
        for (uint64_t i = 0; i < 200000; i++) {
          if (!db->Put(sync, Key(base + i), Value(base + i)).ok()) {
            _exit(3);
          }
          if (i % 16 == 0) {
            PublishProgress(progress_path(w), i);
          }
        }
      });
    }
    for (auto& t : writers) t.join();
    _exit(0);  // Wrote everything before the parent killed us (unlikely).
  }

  // ---- Parent: wait until every thread has progress, then SIGKILL. ----
  SystemClock* clock = SystemClock::Default();
  const uint64_t deadline = clock->NowMicros() + 30 * 1000000ull;
  auto min_progress = [&] {
    uint64_t lo = UINT64_MAX;
    for (int w = 0; w < kWriters; w++) {
      lo = std::min(lo, ReadProgress(progress_path(w)));
    }
    return lo == UINT64_MAX ? 0 : lo;
  };
  while (min_progress() < 200 && clock->NowMicros() < deadline) {
    clock->SleepMicros(20000);
  }
  ASSERT_GE(min_progress(), 200u) << "child made no progress";
  clock->SleepMicros(100000);  // Let the kill land mid-write.
  kill(child, SIGKILL);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited on its own";

  // ---- Recover and verify every thread's acked prefix. ----
  auto wal = MakeWal(segments, dbname);
  DBOptions options;
  options.wal_manager = wal.get();
  options.enable_pipelined_write = true;
  options.allow_concurrent_memtable_write = true;
  options.write_buffer_size = 64 << 20;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  std::string value;
  for (int w = 0; w < kWriters; w++) {
    const uint64_t acked = ReadProgress(progress_path(w));
    ASSERT_GE(acked, 200u);
    const uint64_t base = static_cast<uint64_t>(w) * kRange;
    uint64_t lost = 0;
    for (uint64_t i = 0; i <= acked; i++) {
      Status s = db->Get(ReadOptions(), Key(base + i), &value);
      if (!s.ok() || value != Value(base + i)) {
        lost++;
      }
    }
    EXPECT_EQ(0u, lost) << "writer " << w << ": of " << acked + 1
                        << " acked writes";
  }

  db.reset();
  std::filesystem::remove_all(workdir);
}

INSTANTIATE_TEST_SUITE_P(WalKinds, ProcessCrash, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return param_info.param == 1
                                      ? std::string("classic")
                                      : "ewal" +
                                            std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace rocksmash
