// Tests for the Env implementations: Posix, Mem, Timed.
#include "env/env.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/clock.h"

namespace rocksmash {
namespace {

class EnvKinds : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "posix") {
      env_ = nullptr;
      root_ = ::testing::TempDir() + "/rocksmash_env_test";
      std::filesystem::remove_all(root_);
      ASSERT_TRUE(Env::Default()->CreateDirRecursively(root_).ok());
      raw_env_ = Env::Default();
    } else {
      env_ = NewMemEnv();
      root_ = "/mem";
      raw_env_ = env_.get();
    }
  }

  void TearDown() override {
    if (std::string(GetParam()) == "posix") {
      std::filesystem::remove_all(root_);
    }
  }

  std::string Path(const std::string& name) { return root_ + "/" + name; }

  std::unique_ptr<Env> env_;
  Env* raw_env_ = nullptr;
  std::string root_;
};

TEST_P(EnvKinds, WriteAndReadBack) {
  ASSERT_TRUE(WriteStringToFile(raw_env_, "hello world", Path("f")).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(raw_env_, Path("f"), &contents).ok());
  EXPECT_EQ("hello world", contents);
}

TEST_P(EnvKinds, FileExistsAndRemove) {
  EXPECT_FALSE(raw_env_->FileExists(Path("f")));
  ASSERT_TRUE(WriteStringToFile(raw_env_, "x", Path("f")).ok());
  EXPECT_TRUE(raw_env_->FileExists(Path("f")));
  ASSERT_TRUE(raw_env_->RemoveFile(Path("f")).ok());
  EXPECT_FALSE(raw_env_->FileExists(Path("f")));
}

TEST_P(EnvKinds, GetFileSize) {
  ASSERT_TRUE(WriteStringToFile(raw_env_, std::string(12345, 'a'), Path("f"))
                  .ok());
  uint64_t size = 0;
  ASSERT_TRUE(raw_env_->GetFileSize(Path("f"), &size).ok());
  EXPECT_EQ(12345u, size);
}

TEST_P(EnvKinds, Rename) {
  ASSERT_TRUE(WriteStringToFile(raw_env_, "data", Path("a")).ok());
  ASSERT_TRUE(raw_env_->RenameFile(Path("a"), Path("b")).ok());
  EXPECT_FALSE(raw_env_->FileExists(Path("a")));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(raw_env_, Path("b"), &contents).ok());
  EXPECT_EQ("data", contents);
}

TEST_P(EnvKinds, GetChildren) {
  ASSERT_TRUE(WriteStringToFile(raw_env_, "1", Path("one")).ok());
  ASSERT_TRUE(WriteStringToFile(raw_env_, "2", Path("two")).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(raw_env_->GetChildren(root_, &children).ok());
  EXPECT_NE(children.end(),
            std::find(children.begin(), children.end(), "one"));
  EXPECT_NE(children.end(),
            std::find(children.begin(), children.end(), "two"));
}

TEST_P(EnvKinds, RandomAccessRead) {
  ASSERT_TRUE(
      WriteStringToFile(raw_env_, "0123456789abcdef", Path("f")).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(raw_env_->NewRandomAccessFile(Path("f"), &file).ok());

  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(4, 4, &result, scratch).ok());
  EXPECT_EQ("4567", result.ToString());

  // Read past EOF: short read, not an error.
  ASSERT_TRUE(file->Read(14, 10, &result, scratch).ok());
  EXPECT_EQ("ef", result.ToString());

  ASSERT_TRUE(file->Read(100, 4, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvKinds, SequentialReadAndSkip) {
  ASSERT_TRUE(WriteStringToFile(raw_env_, "0123456789", Path("f")).ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(raw_env_->NewSequentialFile(Path("f"), &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ("012", result.ToString());
  ASSERT_TRUE(file->Skip(4).ok());
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ("789", result.ToString());
}

TEST_P(EnvKinds, AppendAccumulates) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(raw_env_->NewWritableFile(Path("f"), &file).ok());
  ASSERT_TRUE(file->Append("aaa").ok());
  ASSERT_TRUE(file->Append("bbb").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(raw_env_, Path("f"), &contents).ok());
  EXPECT_EQ("aaabbb", contents);
}

TEST_P(EnvKinds, MissingFileErrors) {
  std::unique_ptr<SequentialFile> sfile;
  EXPECT_FALSE(raw_env_->NewSequentialFile(Path("missing"), &sfile).ok());
  std::unique_ptr<RandomAccessFile> rfile;
  EXPECT_FALSE(raw_env_->NewRandomAccessFile(Path("missing"), &rfile).ok());
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvKinds,
                         ::testing::Values("posix", "mem"));

TEST(TimedEnvTest, ChargesModeledLatency) {
  auto base = NewMemEnv();
  SimClock clock;
  DeviceLatencyModel model;
  model.read_base_micros = 100;
  model.write_base_micros = 50;
  model.sync_micros = 500;
  model.read_bandwidth_bps = 1000000;  // 1 MB/s -> 1 us per byte

  auto counters = std::make_shared<DeviceCounters>();
  auto timed = NewTimedEnv(base.get(), &clock, model, counters);

  ASSERT_TRUE(WriteStringToFile(timed.get(), std::string(1000, 'x'),
                                "/f", /*sync=*/true)
                  .ok());
  // write base(50) + sync(500); write bandwidth unlimited.
  EXPECT_EQ(550u, clock.NowMicros());
  EXPECT_EQ(1u, counters->writes);
  EXPECT_EQ(1u, counters->syncs);
  EXPECT_EQ(1000u, counters->bytes_written);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(timed->NewRandomAccessFile("/f", &file).ok());
  std::string scratch(100, 0);
  Slice result;
  ASSERT_TRUE(file->Read(0, 100, &result, scratch.data()).ok());
  // read base(100) + 100 bytes at 1us/byte (100) = 200us on top of 550.
  EXPECT_EQ(750u, clock.NowMicros());
  EXPECT_EQ(100u, counters->bytes_read);
}

}  // namespace
}  // namespace rocksmash
