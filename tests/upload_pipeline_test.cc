// Tests for the asynchronous cloud-upload pipeline in TieredTableStorage:
//   - Install() at a cloud level returns once the file is durable locally;
//     the PUT happens on the upload pool and reads keep being served from
//     the local staging copy until the upload completes (state kUploading),
//   - transient PUT failures are retried with backoff off the foreground
//     path, and each durable upload is counted exactly once by the cloud
//     cost meter (failed attempts never reach the op counters),
//   - an outage parks the upload after exhausting its retries; the file
//     keeps serving reads locally and the parked state survives a restart
//     (rediscovered as local, re-uploaded on the next placement change).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "cloud/object_store.h"
#include "env/env.h"
#include "mash/placement.h"
#include "util/clock.h"

namespace rocksmash {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/rocksmash_uppipe_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Build a fake table file of `size` bytes through the staging interface.
void StageFile(TieredTableStorage* storage, uint64_t number,
               const std::string& payload) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(storage->NewStagingFile(number, &f).ok());
  ASSERT_TRUE(f->Append(payload).ok());
  ASSERT_TRUE(f->Close().ok());
}

std::string PayloadOf(uint64_t number, size_t size = 1000) {
  std::string p;
  p.reserve(size);
  while (p.size() < size) {
    p += static_cast<char>('a' + (number + p.size()) % 26);
  }
  return p;
}

TEST(UploadPipeline, AsyncInstallUploadsInBackground) {
  std::string dir = TestDir("async_basic");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.async_uploads = true;
  TieredTableStorage storage(ts);

  const std::string payload = PayloadOf(1);
  StageFile(&storage, 1, payload);
  ASSERT_TRUE(storage.Install(1, 0, payload.size(), payload.size() - 100).ok());

  storage.WaitForPendingUploads();

  EXPECT_FALSE(storage.IsLocal(1));
  auto stats = storage.GetStats();
  EXPECT_EQ(1u, stats.uploads);
  EXPECT_EQ(0u, stats.pending_uploads);
  EXPECT_EQ(0u, stats.local_files);
  EXPECT_EQ(1u, stats.cloud_files);
  EXPECT_EQ(1u, cloud->Counters().puts);

  std::unique_ptr<BlockSource> source;
  uint64_t size = 0;
  ASSERT_TRUE(storage.OpenTable(1, &source, &size).ok());
  EXPECT_EQ(payload.size(), size);
  std::string got;
  ASSERT_TRUE(source->ReadRaw(0, 64, &got).ok());
  EXPECT_EQ(payload.substr(0, 64), got);
  std::filesystem::remove_all(dir);
}

// The acceptance criterion from the async pipeline: a read of a file whose
// upload is still in flight is served from the local staging copy and never
// waits on (or touches) the cloud. The PUT is made genuinely slow on a real
// clock so the kUploading window is wide open while we read.
TEST(UploadPipeline, ReadsServeLocallyWhileUploadInFlight) {
  std::string dir = TestDir("read_during_upload");
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1'000'000;  // 1s: upload stays in flight.
  model.get_first_byte_micros = 0;
  auto cloud = NewMemObjectStore(SystemClock::Default(), model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.async_uploads = true;
  TieredTableStorage storage(ts);

  const std::string payload = PayloadOf(7);
  StageFile(&storage, 7, payload);

  SystemClock* wall = SystemClock::Default();
  const uint64_t install_start = wall->NowMicros();
  ASSERT_TRUE(storage.Install(7, 0, payload.size(), payload.size() - 100).ok());
  // Install enqueued the PUT instead of performing it inline.
  EXPECT_LT(wall->NowMicros() - install_start, 500'000u);

  EXPECT_EQ(1u, storage.GetStats().pending_uploads);
  EXPECT_TRUE(storage.IsLocal(7));

  // Read while the upload is in flight: served locally, zero cloud GETs.
  std::unique_ptr<BlockSource> source;
  uint64_t size = 0;
  ASSERT_TRUE(storage.OpenTable(7, &source, &size).ok());
  EXPECT_EQ(payload.size(), size);
  std::string got;
  const uint64_t read_start = wall->NowMicros();
  ASSERT_TRUE(source->ReadRaw(100, 200, &got).ok());
  EXPECT_LT(wall->NowMicros() - read_start, 500'000u)
      << "read blocked behind the in-flight upload";
  EXPECT_EQ(payload.substr(100, 200), got);
  EXPECT_EQ(0u, cloud->Counters().gets);

  storage.WaitForPendingUploads();
  EXPECT_FALSE(storage.IsLocal(7));
  EXPECT_EQ(1u, cloud->Counters().puts);
  EXPECT_EQ(0u, storage.GetStats().pending_uploads);
  std::filesystem::remove_all(dir);
}

TEST(UploadPipeline, TransientFailuresRetriedWithBackoff) {
  std::string dir = TestDir("async_retry");
  SimClock cloud_clock;
  SimClock retry_clock;  // Separate, so backoff is observable on its own.
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&cloud_clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.cloud_retry_attempts = 3;
  ts.retry_clock = &retry_clock;
  ts.async_uploads = true;
  // One upload thread: PUT attempts are serialized, so with fail_every_n=2
  // every failed attempt is followed by a successful retry.
  ts.upload_threads = 1;
  TieredTableStorage storage(ts);

  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, injectable);
  CloudFaultPolicy policy;
  policy.fail_every_n = 2;
  injectable->SetFaultPolicy(policy);

  const int kFiles = 6;
  for (uint64_t n = 1; n <= kFiles; n++) {
    const std::string payload = PayloadOf(n, 500);
    StageFile(&storage, n, payload);
    ASSERT_TRUE(storage.Install(n, 0, payload.size(), 400).ok()) << n;
  }
  storage.WaitForPendingUploads();

  EXPECT_EQ(0u, storage.FailedUploads());
  EXPECT_GT(storage.RetriedUploads(), 0u);
  // Backoff ran on the retry clock, off the foreground path.
  EXPECT_GE(retry_clock.NowMicros(), ts.cloud_retry_backoff_micros);

  auto stats = storage.GetStats();
  EXPECT_EQ(static_cast<uint64_t>(kFiles), stats.uploads);
  EXPECT_EQ(0u, stats.pending_uploads);
  // Failed attempts never reach the op counters, so the cost meter charges
  // each durable upload exactly once.
  EXPECT_EQ(static_cast<uint64_t>(kFiles), cloud->Counters().puts);
  for (uint64_t n = 1; n <= kFiles; n++) {
    EXPECT_FALSE(storage.IsLocal(n)) << n;
  }
  std::filesystem::remove_all(dir);
}

TEST(UploadPipeline, OutageParksUploadAndKeepsServingReads) {
  std::string dir = TestDir("async_outage");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.cloud_retry_attempts = 2;
  ts.retry_clock = &clock;
  ts.async_uploads = true;
  TieredTableStorage storage(ts);

  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, injectable);
  CloudFaultPolicy policy;
  policy.unavailable = true;
  injectable->SetFaultPolicy(policy);

  const std::string payload = PayloadOf(3);
  StageFile(&storage, 3, payload);
  ASSERT_TRUE(storage.Install(3, 0, payload.size(), payload.size() - 100).ok());
  storage.WaitForPendingUploads();

  // Parked: retries exhausted, file still serving from its durable local
  // copy, nothing charged to the cloud.
  EXPECT_EQ(1u, storage.FailedUploads());
  auto stats = storage.GetStats();
  EXPECT_EQ(1u, stats.pending_uploads);
  EXPECT_EQ(0u, stats.uploads);
  EXPECT_TRUE(storage.IsLocal(3));
  EXPECT_EQ(0u, cloud->Counters().puts);

  std::unique_ptr<BlockSource> source;
  uint64_t size = 0;
  ASSERT_TRUE(storage.OpenTable(3, &source, &size).ok());
  std::string got;
  ASSERT_TRUE(source->ReadRaw(0, 128, &got).ok());
  EXPECT_EQ(payload.substr(0, 128), got);
  EXPECT_EQ(0u, cloud->Counters().gets);
  std::filesystem::remove_all(dir);
}

// "Crash" while an upload is parked/in flight: the local staging copy is
// durable, so a restart rediscovers the file as local and the next placement
// change re-uploads it. No data is lost, no object is double-charged.
TEST(UploadPipeline, CrashDuringUploadSurvivesReopen) {
  std::string dir = TestDir("async_crash");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.cloud_retry_attempts = 2;
  ts.retry_clock = &clock;
  ts.async_uploads = true;

  const std::string payload = PayloadOf(5);
  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, injectable);
  {
    TieredTableStorage storage(ts);
    CloudFaultPolicy policy;
    policy.unavailable = true;
    injectable->SetFaultPolicy(policy);
    StageFile(&storage, 5, payload);
    ASSERT_TRUE(
        storage.Install(5, 0, payload.size(), payload.size() - 100).ok());
    storage.WaitForPendingUploads();
    EXPECT_EQ(1u, storage.FailedUploads());
    // Destructor shuts the upload pool down with the upload still parked —
    // the crash point. The staging copy stays on disk.
  }
  EXPECT_EQ(0u, cloud->Counters().puts);

  // Outage over; restart.
  injectable->SetFaultPolicy(CloudFaultPolicy{});
  TieredTableStorage reopened(ts);
  EXPECT_TRUE(reopened.IsLocal(5));
  EXPECT_EQ(1u, reopened.GetStats().local_files);

  // Data intact across the crash.
  std::unique_ptr<BlockSource> source;
  uint64_t size = 0;
  ASSERT_TRUE(reopened.OpenTable(5, &source, &size).ok());
  EXPECT_EQ(payload.size(), size);
  std::string got;
  ASSERT_TRUE(source->ReadRaw(0, 256, &got).ok());
  EXPECT_EQ(payload.substr(0, 256), got);

  // The next placement change re-enqueues the upload; this time it lands.
  ASSERT_TRUE(reopened.OnLevelChange(5, 0).ok());
  reopened.WaitForPendingUploads();
  EXPECT_FALSE(reopened.IsLocal(5));
  EXPECT_EQ(1u, cloud->Counters().puts);
  EXPECT_EQ(0u, reopened.GetStats().pending_uploads);

  std::unique_ptr<BlockSource> cloud_source;
  ASSERT_TRUE(reopened.OpenTable(5, &cloud_source, &size).ok());
  ASSERT_TRUE(cloud_source->ReadRaw(300, 100, &got).ok());
  EXPECT_EQ(payload.substr(300, 100), got);
  std::filesystem::remove_all(dir);
}

// Removing a file while its upload is parked must not leave the pipeline
// counting it as pending forever.
TEST(UploadPipeline, RemoveWhileUploadParked) {
  std::string dir = TestDir("async_remove");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.cloud_retry_attempts = 1;
  ts.retry_clock = &clock;
  ts.async_uploads = true;
  TieredTableStorage storage(ts);

  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  ASSERT_NE(nullptr, injectable);
  CloudFaultPolicy policy;
  policy.unavailable = true;
  injectable->SetFaultPolicy(policy);

  const std::string payload = PayloadOf(9, 400);
  StageFile(&storage, 9, payload);
  ASSERT_TRUE(storage.Install(9, 0, payload.size(), 300).ok());
  storage.WaitForPendingUploads();
  EXPECT_EQ(1u, storage.GetStats().pending_uploads);

  injectable->SetFaultPolicy(CloudFaultPolicy{});
  EXPECT_TRUE(storage.Remove(9).ok());
  auto stats = storage.GetStats();
  EXPECT_EQ(0u, stats.pending_uploads);
  EXPECT_EQ(0u, stats.local_files);
  std::vector<uint64_t> numbers;
  ASSERT_TRUE(storage.ListTables(&numbers).ok());
  EXPECT_TRUE(numbers.empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rocksmash
