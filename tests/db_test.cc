// End-to-end tests of the LSM engine through the public DB interface.
#include "lsm/db.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>

#include "env/env.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "util/random.h"

namespace rocksmash {
namespace {

class DBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "/rocksmash_db_test_" +
              std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dbname_);
    options_.create_if_missing = true;
    options_.write_buffer_size = 256 * 1024;
    options_.block_cache = nullptr;
    ASSERT_TRUE(Open().ok());
  }

  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dbname_);
  }

  Status Open() { return DB::Open(options_, dbname_, &db_); }

  Status Reopen() {
    db_.reset();
    return Open();
  }

  Status Put(const std::string& k, const std::string& v, bool sync = false) {
    WriteOptions wo;
    wo.sync = sync;
    return db_->Put(wo, k, v);
  }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return value;
  }

  DBOptions options_;
  std::string dbname_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, Empty) { EXPECT_EQ("NOT_FOUND", Get("foo")); }

TEST_F(DBTest, PutGet) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("bar", "v2").ok());
  EXPECT_EQ("v2", Get("bar"));
  EXPECT_EQ("v1", Get("foo"));
}

TEST_F(DBTest, Overwrite) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(Put("foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
}

TEST_F(DBTest, DeleteGet) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "foo").ok());
  EXPECT_EQ("NOT_FOUND", Get("foo"));
}

TEST_F(DBTest, DeleteNonexistent) {
  EXPECT_TRUE(db_->Delete(WriteOptions(), "nothing").ok());
}

TEST_F(DBTest, EmptyValue) {
  ASSERT_TRUE(Put("k", "").ok());
  EXPECT_EQ("", Get("k"));
}

TEST_F(DBTest, EmptyKey) {
  ASSERT_TRUE(Put("", "v").ok());
  EXPECT_EQ("v", Get(""));
}

TEST_F(DBTest, LargeValue) {
  std::string big(1 << 20, 'x');
  ASSERT_TRUE(Put("big", big).ok());
  EXPECT_EQ(big, Get("big"));
}

TEST_F(DBTest, WriteBatchAtomicity) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("3", Get("c"));
}

TEST_F(DBTest, GetFromImmutableAndSstLayers) {
  // Enough data to force several flushes.
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(
        Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 5000; i += 97) {
    EXPECT_EQ("value" + std::to_string(i), Get("key" + std::to_string(i)));
  }
}

TEST_F(DBTest, FlushThenGet) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ("v1", Get("foo"));

  // A non-overlapping flush may be placed as deep as kMaxMemCompactLevel,
  // so count files across the shallow levels.
  int total = 0;
  for (int level = 0; level <= config::kMaxMemCompactLevel; level++) {
    std::string num_files;
    ASSERT_TRUE(db_->GetProperty(
        "rocksmash.num-files-at-level" + std::to_string(level), &num_files));
    total += std::stoi(num_files);
  }
  EXPECT_GT(total, 0);
}

TEST_F(DBTest, ReopenPreservesData) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(Put("bar", "v2").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Put("baz", "v3").ok());  // Left in WAL only
  ASSERT_TRUE(Reopen().ok());
  EXPECT_EQ("v1", Get("foo"));
  EXPECT_EQ("v2", Get("bar"));
  EXPECT_EQ("v3", Get("baz"));
}

TEST_F(DBTest, RecoveryReplaysWal) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(Reopen().ok());
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ("v" + std::to_string(i), Get("k" + std::to_string(i)));
  }
  RecoveryStats stats = db_->GetRecoveryStats();
  EXPECT_GE(stats.records_replayed, 100u);
  EXPECT_GE(stats.logs_replayed, 1u);
}

TEST_F(DBTest, RepeatedReopen) {
  for (int round = 0; round < 5; round++) {
    ASSERT_TRUE(Put("round" + std::to_string(round), "x").ok());
    ASSERT_TRUE(Reopen().ok());
  }
  for (int round = 0; round < 5; round++) {
    EXPECT_EQ("x", Get("round" + std::to_string(round)));
  }
}

TEST_F(DBTest, CompactionKeepsData) {
  const int kN = 20000;
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), std::string(100, 'a' + i % 26))
                    .ok());
  }
  db_->WaitForCompaction();
  for (int i = 0; i < kN; i += 53) {
    EXPECT_EQ(std::string(100, 'a' + i % 26), Get("key" + std::to_string(i)));
  }
}

TEST_F(DBTest, ManualCompactRange) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  for (int i = 0; i < 3000; i += 37) {
    EXPECT_EQ("v" + std::to_string(i), Get("key" + std::to_string(i)));
  }
  // After a full manual compaction L0 should be empty.
  std::string v;
  ASSERT_TRUE(db_->GetProperty("rocksmash.num-files-at-level0", &v));
  EXPECT_EQ("0", v);
}

TEST_F(DBTest, IteratorForward) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
  it->Next();
  EXPECT_EQ("b", it->key().ToString());
  it->Next();
  EXPECT_EQ("c", it->key().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, IteratorBackward) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Prev();
  EXPECT_EQ("b", it->key().ToString());
  it->Prev();
  EXPECT_EQ("a", it->key().ToString());
  it->Prev();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, IteratorSeesLatestVersionOnly) {
  ASSERT_TRUE(Put("k", "old").ok());
  ASSERT_TRUE(Put("k", "new").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("new", it->value().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, IteratorHidesDeleted) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "a").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());
}

TEST_F(DBTest, IteratorSeek) {
  for (int i = 0; i < 100; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%04d", i);
    ASSERT_TRUE(Put(buf, std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->Seek("k0051");  // Odd: lands on k0052.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0052", it->key().ToString());
}

TEST_F(DBTest, IteratorAcrossFlush) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Put("b", "2").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
  EXPECT_EQ(2, count);
}

TEST_F(DBTest, SnapshotIsolation) {
  ASSERT_TRUE(Put("k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "v2").ok());

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("v1", value);

  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("v2", value);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, SnapshotSurvivesFlushAndCompaction) {
  ASSERT_TRUE(Put("k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(Put("fill" + std::to_string(i), std::string(200, 'f')).ok());
  }
  ASSERT_TRUE(Put("k", "v2").ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("v1", value);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, SnapshotOfDeletedKey) {
  ASSERT_TRUE(Put("k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("v1", value);
  EXPECT_EQ("NOT_FOUND", Get("k"));
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, GetProperty) {
  std::string v;
  EXPECT_TRUE(db_->GetProperty("rocksmash.stats", &v));
  EXPECT_TRUE(db_->GetProperty("rocksmash.sstables", &v));
  EXPECT_TRUE(db_->GetProperty("rocksmash.approximate-memory-usage", &v));
  EXPECT_FALSE(db_->GetProperty("bogus.property", &v));
}

TEST_F(DBTest, SyncWrites) {
  ASSERT_TRUE(Put("durable", "yes", /*sync=*/true).ok());
  ASSERT_TRUE(Reopen().ok());
  EXPECT_EQ("yes", Get("durable"));
}

TEST_F(DBTest, ConcurrentWriters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(db_->Put(WriteOptions(), key, key + "-value").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 41) {
      std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(key + "-value", Get(key));
    }
  }
}

TEST_F(DBTest, ConcurrentReadersWhileWriting) {
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    int i = 1000;
    while (!stop.load()) {
      EXPECT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
      i++;
    }
  });
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 1000; i += 7) {
      EXPECT_EQ("v" + std::to_string(i), Get("k" + std::to_string(i)));
    }
  }
  stop.store(true);
  writer.join();
}

TEST_F(DBTest, OpenMissingWithoutCreateFails) {
  DBOptions opt;
  opt.create_if_missing = false;
  std::unique_ptr<DB> db;
  Status s = DB::Open(opt, dbname_ + "_nonexistent", &db);
  EXPECT_FALSE(s.ok());
}

TEST_F(DBTest, ErrorIfExists) {
  DBOptions opt = options_;
  opt.error_if_exists = true;
  db_.reset();
  std::unique_ptr<DB> db;
  Status s = DB::Open(opt, dbname_, &db);
  EXPECT_FALSE(s.ok());
}

TEST_F(DBTest, DestroyDBRemovesFiles) {
  ASSERT_TRUE(Put("k", "v").ok());
  db_.reset();
  ASSERT_TRUE(DestroyDB(dbname_, options_).ok());
  EXPECT_FALSE(Env::Default()->FileExists(CurrentFileName(dbname_)));
}

TEST_F(DBTest, KeysWithBinaryContent) {
  std::string key("\x00\x01\xff\x7f", 4);
  std::string value("\xde\xad\xbe\xef", 4);
  ASSERT_TRUE(Put(key, value).ok());
  EXPECT_EQ(value, Get(key));
}

TEST_F(DBTest, OrderedIterationMatchesSortedInput) {
  std::set<std::string> keys;
  Random64 rng(7);
  for (int i = 0; i < 500; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(100000));
    keys.insert(key);
    ASSERT_TRUE(Put(key, "v").ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  auto expect = keys.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, keys.end());
    EXPECT_EQ(*expect, it->key().ToString());
  }
  EXPECT_EQ(expect, keys.end());
}

}  // namespace
}  // namespace rocksmash
