// Coverage for less-traveled paths: custom comparators (including the
// manifest's comparator-mismatch guard), heap-allocated LookupKeys,
// ApproximateOffsetOf, reverse iteration over deletions, and write-batch
// group commit under bursts.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "env/env.h"
#include "util/random.h"

namespace rocksmash {
namespace {

// A comparator that orders by numeric suffix (demonstrates non-bytewise
// user comparators flow end to end).
class NumberComparator final : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    uint64_t na = Parse(a), nb = Parse(b);
    if (na < nb) return -1;
    if (na > nb) return +1;
    return 0;
  }
  const char* Name() const override { return "test.NumberComparator"; }
  void FindShortestSeparator(std::string*, const Slice&) const override {}
  void FindShortSuccessor(std::string*) const override {}

 private:
  static uint64_t Parse(const Slice& s) {
    return std::strtoull(s.ToString().c_str(), nullptr, 10);
  }
};

TEST(CustomComparatorTest, NumericOrderEndToEnd) {
  std::string dbname = ::testing::TempDir() + "/rocksmash_numcmp";
  std::filesystem::remove_all(dbname);
  NumberComparator cmp;
  DBOptions options;
  options.comparator = &cmp;
  options.filter_bits_per_key = 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  // Insert numbers whose BYTEWISE order differs from numeric order.
  for (uint64_t v : {100, 3, 20, 1, 1000, 50}) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), std::to_string(v), "v" + std::to_string(v))
            .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  std::vector<uint64_t> order;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    order.push_back(std::strtoull(it->key().ToString().c_str(), nullptr, 10));
  }
  it.reset();
  EXPECT_EQ((std::vector<uint64_t>{1, 3, 20, 50, 100, 1000}), order);

  // Reopening with a different comparator must be refused (the MANIFEST
  // records the comparator name).
  db.reset();
  DBOptions bytewise;
  Status s = DB::Open(bytewise, dbname, &db);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(std::string::npos, s.ToString().find("comparator"));

  std::filesystem::remove_all(dbname);
}

TEST(LookupKeyTest, LongKeysUseHeapPath) {
  // Keys longer than the 200-byte inline buffer exercise the heap branch.
  std::string long_key(5000, 'k');
  LookupKey lkey(long_key, 7);
  EXPECT_EQ(long_key, lkey.user_key().ToString());
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(lkey.internal_key(), &parsed));
  EXPECT_EQ(7u, parsed.sequence);
}

TEST(LongKeyValueTest, EndToEnd) {
  std::string dbname = ::testing::TempDir() + "/rocksmash_longkv";
  std::filesystem::remove_all(dbname);
  DBOptions options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  std::string big_key(10000, 'K');
  std::string big_value(500000, 'V');
  ASSERT_TRUE(db->Put(WriteOptions(), big_key, big_value).ok());
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), big_key, &value).ok());
  EXPECT_EQ(big_value, value);
  db.reset();
  std::filesystem::remove_all(dbname);
}

TEST(ApproximateOffsetTest, MonotoneOverKeys) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/t", &file).ok());
  TableOptions topt;
  topt.compression = kNoCompression;
  TableBuilder builder(topt, file.get());
  Random64 rng(1);
  for (int i = 0; i < 2000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    std::string value(100, '\0');
    for (char& c : value) c = static_cast<char>(rng.Next());
    builder.Add(key, value);
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE(file->Close().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("/t", &rfile).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(topt, std::make_unique<FileBlockSource>(rfile.get()),
                          builder.FileSize(), nullptr, 1, &table)
                  .ok());

  uint64_t prev = 0;
  for (int i = 0; i < 2000; i += 200) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    uint64_t offset = table->ApproximateOffsetOf(key);
    EXPECT_GE(offset, prev);
    prev = offset;
  }
  // A key past the end approximates the file size.
  EXPECT_GE(table->ApproximateOffsetOf("zzz"), prev);
}

TEST(ReverseIterationTest, PrevOverDeletionsAndOverwrites) {
  std::string dbname = ::testing::TempDir() + "/rocksmash_reviter";
  std::filesystem::remove_all(dbname);
  DBOptions options;
  options.write_buffer_size = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  for (int i = 0; i < 200; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%04d", i);
    ASSERT_TRUE(db->Put(WriteOptions(), buf, "v1").ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // Delete odd keys, overwrite every 10th.
  for (int i = 1; i < 200; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%04d", i);
    ASSERT_TRUE(db->Delete(WriteOptions(), buf).ok());
  }
  for (int i = 0; i < 200; i += 10) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%04d", i);
    ASSERT_TRUE(db->Put(WriteOptions(), buf, "v2").ok());
  }

  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  int n = 0;
  std::string prev_key = "zzzz";
  for (it->SeekToLast(); it->Valid(); it->Prev()) {
    std::string k = it->key().ToString();
    EXPECT_LT(k, prev_key);
    prev_key = k;
    int num = std::atoi(k.c_str() + 1);
    EXPECT_EQ(0, num % 2) << "odd keys were deleted";
    EXPECT_EQ(num % 10 == 0 ? "v2" : "v1", it->value().ToString());
    n++;
  }
  EXPECT_EQ(100, n);

  // Direction flip mid-stream.
  it->Seek("k0100");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0100", it->key().ToString());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0098", it->key().ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0100", it->key().ToString());

  it.reset();
  db.reset();
  std::filesystem::remove_all(dbname);
}

TEST(PlacementPropertyTest, ReportsPerLevelTierSplit) {
  std::string dbname = ::testing::TempDir() + "/rocksmash_placementprop";
  std::filesystem::remove_all(dbname);
  DBOptions options;
  options.write_buffer_size = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(100, 'p'))
                    .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();

  std::string placement;
  ASSERT_TRUE(db->GetProperty("rocksmash.placement", &placement));
  // Local-only storage: every listed level reports 0 cloud files.
  EXPECT_NE(std::string::npos, placement.find("files"));
  EXPECT_EQ(std::string::npos, placement.find(" 1 cloud"));
  db.reset();
  std::filesystem::remove_all(dbname);
}

TEST(GroupCommitTest, BurstOfWritersAllSucceed) {
  std::string dbname = ::testing::TempDir() + "/rocksmash_groupcommit";
  std::filesystem::remove_all(dbname);
  DBOptions options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&db, t] {
      WriteOptions sync;
      sync.sync = (t % 2 == 0);  // Mix sync and async writers in the queue.
      for (int i = 0; i < kPerThread; i++) {
        WriteBatch batch;
        batch.Put("t" + std::to_string(t) + "-" + std::to_string(i), "v");
        batch.Put("shared-" + std::to_string(i),
                  "t" + std::to_string(t));
        ASSERT_TRUE(db->Write(sync, &batch).ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 29) {
      ASSERT_TRUE(db->Get(ReadOptions(),
                          "t" + std::to_string(t) + "-" + std::to_string(i),
                          &value)
                      .ok());
    }
  }
  // Shared keys hold the value of exactly one of the racing writers.
  for (int i = 0; i < kPerThread; i += 37) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "shared-" + std::to_string(i), &value).ok());
    EXPECT_EQ('t', value[0]);
  }
  db.reset();
  std::filesystem::remove_all(dbname);
}

}  // namespace
}  // namespace rocksmash
