// Concurrency stress suite. Designed to run under ThreadSanitizer (the tsan
// CMake preset): every test drives genuinely concurrent traffic through a
// shared component so TSan can observe the full locking surface. The tests
// also assert functional invariants, so they are meaningful (if weaker)
// without a sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/object_store.h"
#include "env/env.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "mash/metadata_store.h"
#include "mash/persistent_cache.h"
#include "mash/rocksmash_db.h"
#include "trace/trace_tools.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace rocksmash {
namespace {

std::string TestDir(const char* suffix) {
  return ::testing::TempDir() + "/rocksmash_stress_" + suffix;
}

std::string KeyOf(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string ValueOf(uint64_t i, size_t len = 128) {
  std::string v = "value-" + std::to_string(i) + "-";
  while (v.size() < len) {
    v += static_cast<char>('a' + (i + v.size()) % 26);
  }
  return v;
}

// ---------- DB: writers + background compaction + readers ----------

TEST(ConcurrencyStressTest, WritersReadersAndCompaction) {
  const std::string dbname = TestDir("db");
  std::filesystem::remove_all(dbname);

  DBOptions options;
  options.create_if_missing = true;
  // Small buffers so the workload drives real flushes and compactions.
  options.write_buffer_size = 64 * 1024;
  options.max_file_size = 64 * 1024;
  options.max_bytes_for_level_base = 256 * 1024;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr uint64_t kKeysPerWriter = 800;

  std::atomic<bool> stop_readers{false};
  std::atomic<uint64_t> write_errors{0};
  std::atomic<uint64_t> read_errors{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders + 1);
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&db, &write_errors, w] {
      WriteOptions wo;
      for (uint64_t i = 0; i < kKeysPerWriter; i++) {
        const uint64_t k = static_cast<uint64_t>(w) * kKeysPerWriter + i;
        if (!db->Put(wo, KeyOf(k), ValueOf(k)).ok()) {
          write_errors.fetch_add(1);
        }
        if (i % 97 == 0) {
          // Deletes exercise the tombstone path under compaction.
          if (!db->Delete(wo, KeyOf(k)).ok()) {
            write_errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&db, &stop_readers, &read_errors, r] {
      Random64 rng(1000 + static_cast<uint64_t>(r));
      while (!stop_readers.load(std::memory_order_acquire)) {
        const uint64_t k = rng.Uniform(kWriters * kKeysPerWriter);
        std::string value;
        Status s = db->Get(ReadOptions(), KeyOf(k), &value);
        if (!s.ok() && !s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
        if (k % 11 == 0) {
          // Iterators pin memtables and versions concurrently with flushes.
          std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
          it->Seek(KeyOf(k));
          int steps = 0;
          while (it->Valid() && steps++ < 20) {
            it->Next();
          }
        }
      }
    });
  }
  // One thread hammers flush + compaction-wait while traffic is live.
  threads.emplace_back([&db, &stop_readers] {
    while (!stop_readers.load(std::memory_order_acquire)) {
      EXPECT_TRUE(db->FlushMemTable().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (int w = 0; w < kWriters; w++) {
    threads[static_cast<size_t>(w)].join();
  }
  stop_readers.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); t++) {
    threads[t].join();
  }

  EXPECT_EQ(0u, write_errors.load());
  EXPECT_EQ(0u, read_errors.load());

  db->WaitForCompaction();

  // Survivors must read back exactly; deleted keys must stay deleted.
  for (uint64_t w = 0; w < kWriters; w++) {
    for (uint64_t i = 1; i < kKeysPerWriter; i += 137) {
      const uint64_t k = w * kKeysPerWriter + i;
      std::string value;
      Status s = db->Get(ReadOptions(), KeyOf(k), &value);
      if (i % 97 == 0) continue;  // May or may not have been deleted.
      ASSERT_TRUE(s.ok()) << KeyOf(k) << ": " << s.ToString();
      EXPECT_EQ(ValueOf(k), value);
    }
  }

  db.reset();
  std::filesystem::remove_all(dbname);
}

// ---------- DB: pipelined write groups racing flush + compaction ----------

// The parallel memtable-apply stage inserts into mem_ with the DB mutex
// released; memtable switches (flush) and version installs (compaction)
// must wait for in-flight appliers, never rip the memtable out from under
// them. Small buffers force switches to land mid-stream while N batched
// writers keep the pipeline full, and dedicated threads hammer
// FlushMemTable/CompactRange on top of the organic background work.
TEST(ConcurrencyStressTest, PipelinedWritersVersusFlushAndCompaction) {
  const std::string dbname = TestDir("pipelined_writers");
  std::filesystem::remove_all(dbname);

  DBOptions options;
  options.create_if_missing = true;
  options.enable_pipelined_write = true;
  options.allow_concurrent_memtable_write = true;
  // Small enough that every writer sees several memtable switches.
  options.write_buffer_size = 32 * 1024;
  options.max_file_size = 64 * 1024;
  options.max_bytes_for_level_base = 256 * 1024;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kWriters = 6;
  constexpr uint64_t kKeysPerWriter = 1200;
  constexpr int kBatchKeys = 8;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_errors{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&db, &write_errors, w] {
      WriteOptions wo;
      uint64_t i = 0;
      while (i < kKeysPerWriter) {
        WriteBatch batch;
        for (int b = 0; b < kBatchKeys && i < kKeysPerWriter; b++, i++) {
          const uint64_t k = static_cast<uint64_t>(w) * kKeysPerWriter + i;
          batch.Put(KeyOf(k), ValueOf(k));
        }
        if (!db->Write(wo, &batch).ok()) {
          write_errors.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&db, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(db->FlushMemTable().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  threads.emplace_back([&db, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(db->CompactRange(nullptr, nullptr).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (int w = 0; w < kWriters; w++) {
    threads[static_cast<size_t>(w)].join();
  }
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); t++) {
    threads[t].join();
  }

  EXPECT_EQ(0u, write_errors.load());
  db->WaitForCompaction();

  // Every batch landed atomically despite the memtable churn.
  for (uint64_t w = 0; w < kWriters; w++) {
    for (uint64_t i = 0; i < kKeysPerWriter; i += 61) {
      const uint64_t k = w * kKeysPerWriter + i;
      std::string value;
      Status s = db->Get(ReadOptions(), KeyOf(k), &value);
      ASSERT_TRUE(s.ok()) << KeyOf(k) << ": " << s.ToString();
      EXPECT_EQ(ValueOf(k), value);
    }
  }

  db.reset();
  std::filesystem::remove_all(dbname);
}

// ---------- DB: flush lane racing the compaction lane ----------

// The two background lanes run concurrently: a memtable flush must be able
// to land while a compaction is mid-flight. The test drives enough traffic
// that both lanes are busy, polls the bg-jobs property to watch them, and
// asserts that WaitForCompaction() and the destructor drain both lanes.
TEST(ConcurrencyStressTest, FlushWhileCompactingDrainsBothLanes) {
  const std::string dbname = TestDir("two_lanes");
  std::filesystem::remove_all(dbname);

  DBOptions options;
  options.create_if_missing = true;
  // Tiny buffers: every few hundred writes flushes, and L0 fills fast
  // enough that compactions overlap the flushes.
  options.write_buffer_size = 16 * 1024;
  options.max_file_size = 16 * 1024;
  options.max_bytes_for_level_base = 64 * 1024;
  options.max_background_flushes = 1;
  options.max_background_compactions = 1;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr uint64_t kKeys = 4000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> both_lanes_seen{0};
  std::atomic<uint64_t> any_lane_seen{0};

  // Observer: samples which lanes have a job in flight.
  std::thread observer([&db, &done, &both_lanes_seen, &any_lane_seen] {
    while (!done.load(std::memory_order_acquire)) {
      std::string jobs;
      if (db->GetProperty("rocksmash.bg-jobs", &jobs)) {
        const bool flush = jobs.find("flush=1") != std::string::npos;
        const bool compact = jobs.find("compaction=1") != std::string::npos;
        if (flush || compact) any_lane_seen.fetch_add(1);
        if (flush && compact) both_lanes_seen.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  WriteOptions wo;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(wo, KeyOf(i), ValueOf(i, 256)).ok());
  }
  done.store(true, std::memory_order_release);
  observer.join();

  // The workload kept the background lanes busy.
  EXPECT_GT(any_lane_seen.load(), 0u);

  // WaitForCompaction drains both lanes: no flush or compaction job left,
  // and nothing pending that would re-schedule one.
  db->WaitForCompaction();
  std::string jobs;
  ASSERT_TRUE(db->GetProperty("rocksmash.bg-jobs", &jobs));
  EXPECT_EQ("flush=0 compaction=0", jobs);

  // Every key survived the flush/compaction races.
  for (uint64_t i = 0; i < kKeys; i += 97) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(i), &value).ok()) << KeyOf(i);
    EXPECT_EQ(ValueOf(i, 256), value);
  }

  // Destructor drain: leave fresh work in both lanes (a non-empty memtable
  // and, likely, a compaction-worthy L0), then tear down. The destructor
  // must shut both pools down cleanly with jobs possibly mid-flight.
  for (uint64_t i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(wo, KeyOf(kKeys + i), ValueOf(kKeys + i, 256)).ok());
  }
  EXPECT_TRUE(db->FlushMemTable().ok());
  db.reset();

  // Reopen proves the teardown left a consistent store behind.
  std::unique_ptr<DB> reopened;
  ASSERT_TRUE(DB::Open(options, dbname, &reopened).ok());
  for (uint64_t i = 0; i < kKeys + 500; i += 113) {
    std::string value;
    ASSERT_TRUE(reopened->Get(ReadOptions(), KeyOf(i), &value).ok())
        << KeyOf(i);
    EXPECT_EQ(ValueOf(i, 256), value);
  }
  reopened.reset();
  std::filesystem::remove_all(dbname);
}

// ---------- DB: MultiGet batches racing flush/compaction/uploads ----------

// Batched readers hammer the parallel cloud-fetch path (superversion
// snapshot, per-file block grouping, shared fetch pool) while a writer keeps
// flushes, compactions, and async uploads churning underneath them. The
// writer always rewrites identical bytes, so every batched read must find
// every key with exactly its canonical value at any interleaving.
TEST(ConcurrencyStressTest, MultiGetRacesFlushAndCompaction) {
  const std::string dir = TestDir("multiget");
  std::filesystem::remove_all(dir);

  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  RocksMashOptions options;
  options.local_dir = dir + "/db";
  options.cloud = cloud.get();
  options.cloud_level_start = 0;  // Every SST uploads: batches constantly
                                  // exercise the parallel fetch fan-out.
  options.cloud_readahead_bytes = 1024;
  options.write_buffer_size = 16 * 1024;
  options.max_file_size = 16 * 1024;
  options.max_bytes_for_level_base = 64 * 1024;
  options.block_size = 1024;
  options.persistent_cache_bytes = 32 * 1024;

  std::unique_ptr<RocksMashDB> db;
  ASSERT_TRUE(RocksMashDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 1500;
  WriteOptions wo;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(wo, KeyOf(i), ValueOf(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> value_mismatches{0};

  constexpr int kBatchReaders = 3;
  std::vector<std::thread> threads;
  threads.reserve(kBatchReaders + 1);
  for (int r = 0; r < kBatchReaders; r++) {
    threads.emplace_back([&db, &stop, &read_errors, &value_mismatches, r] {
      Random64 rng(500 + static_cast<uint64_t>(r));
      ReadOptions ro;
      std::vector<std::string> key_storage;
      std::vector<Slice> keys;
      std::vector<std::string> values;
      std::vector<Status> statuses;
      while (!stop.load(std::memory_order_acquire)) {
        key_storage.clear();
        keys.clear();
        for (int j = 0; j < 16; j++) {
          key_storage.push_back(KeyOf(rng.Uniform(kKeys)));
        }
        for (const std::string& k : key_storage) keys.emplace_back(k);
        db->MultiGet(ro, keys, &values, &statuses);
        for (size_t i = 0; i < keys.size(); i++) {
          if (!statuses[i].ok()) {
            read_errors.fetch_add(1);
          } else if (values[i] != ValueOf(std::stoull(
                         key_storage[i].substr(4)))) {
            value_mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Writer: identical-byte rewrites plus periodic flushes keep both
  // background lanes and the upload pipeline busy.
  threads.emplace_back([&db, &wo] {
    Random64 rng(31337);
    for (int i = 0; i < 3000; i++) {
      const uint64_t k = rng.Uniform(kKeys);
      EXPECT_TRUE(db->Put(wo, KeyOf(k), ValueOf(k)).ok());
      if (i % 400 == 399) {
        EXPECT_TRUE(db->FlushMemTable().ok());
      }
    }
  });

  threads.back().join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kBatchReaders; r++) {
    threads[static_cast<size_t>(r)].join();
  }

  EXPECT_EQ(0u, read_errors.load());
  EXPECT_EQ(0u, value_mismatches.load());

  db->WaitForCompaction();
  db.reset();
  std::filesystem::remove_all(dir);
}

// ---------- DB: scans racing flush, compaction, and cloud prefetch ----------

// Range scans (plain, prefix-mode, and streaming-readahead) run against a
// cloud-resident tree while a writer churns keys and forces flushes. The
// scans must always observe a sorted, consistent view: identical-byte
// rewrites mean any scanned value must equal the canonical one, keys must
// be strictly increasing, and errors must never appear. Under TSan this
// also races the async prefetch segments against iterator teardown.
TEST(ConcurrencyStressTest, ScansRaceFlushCompactionAndPrefetch) {
  const std::string dir = TestDir("scan");
  std::filesystem::remove_all(dir);

  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  auto cloud = NewMemObjectStore(&clock, model);

  RocksMashOptions options;
  options.local_dir = dir + "/db";
  options.cloud = cloud.get();
  options.cloud_level_start = 0;  // Scans stream from cloud-resident SSTs.
  options.cloud_readahead_bytes = 0;
  options.write_buffer_size = 16 * 1024;
  options.max_file_size = 16 * 1024;
  options.max_bytes_for_level_base = 64 * 1024;
  options.block_size = 1024;
  options.persistent_cache_bytes = 16 * 1024;
  options.prefix_length = 6;  // "key-00".."key-99" buckets of KeyOf()

  std::unique_ptr<RocksMashDB> db;
  ASSERT_TRUE(RocksMashDB::Open(options, &db).ok());

  constexpr uint64_t kKeys = 1500;
  WriteOptions wo;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(wo, KeyOf(i), ValueOf(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scan_errors{0};
  std::atomic<uint64_t> order_violations{0};
  std::atomic<uint64_t> value_mismatches{0};

  constexpr int kScanners = 3;
  std::vector<std::thread> threads;
  threads.reserve(kScanners + 1);
  for (int r = 0; r < kScanners; r++) {
    threads.emplace_back([&db, &stop, &scan_errors, &order_violations,
                          &value_mismatches, r] {
      Random64 rng(900 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        ReadOptions ro;
        const int mode = static_cast<int>(rng.Uniform(3));
        ro.scan_readahead_bytes = (mode == 0) ? 0 : 64 * 1024;
        ro.prefix_same_as_start = (mode == 2);
        const uint64_t start = rng.Uniform(kKeys);
        std::unique_ptr<Iterator> it = db->NewIterator(ro);
        it->Seek(KeyOf(start));
        std::string prev;
        int steps = 0;
        while (it->Valid() && steps++ < 200) {
          const std::string key = it->key().ToString();
          if (!prev.empty() && key <= prev) order_violations.fetch_add(1);
          // Identical-byte rewrites: every value equals the canonical one.
          if (it->value().ToString() != ValueOf(std::stoull(key.substr(4)))) {
            value_mismatches.fetch_add(1);
          }
          if (ro.prefix_same_as_start &&
              key.substr(0, 6) != KeyOf(start).substr(0, 6)) {
            order_violations.fetch_add(1);
          }
          prev = key;
          it->Next();
        }
        if (!it->status().ok()) scan_errors.fetch_add(1);
      }
    });
  }
  // Writer: identical-byte rewrites plus periodic flushes keep flushes,
  // compactions, and the upload pipeline landing mid-scan.
  threads.emplace_back([&db, &wo] {
    Random64 rng(424242);
    for (int i = 0; i < 3000; i++) {
      const uint64_t k = rng.Uniform(kKeys);
      EXPECT_TRUE(db->Put(wo, KeyOf(k), ValueOf(k)).ok());
      if (i % 400 == 399) {
        EXPECT_TRUE(db->FlushMemTable().ok());
      }
    }
  });

  threads.back().join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kScanners; r++) {
    threads[static_cast<size_t>(r)].join();
  }

  EXPECT_EQ(0u, scan_errors.load());
  EXPECT_EQ(0u, order_violations.load());
  EXPECT_EQ(0u, value_mismatches.load());

  db->WaitForCompaction();
  db.reset();
  std::filesystem::remove_all(dir);
}

// ---------- ShardedDB: writers + scans + MultiGet racing shard flushes ----------

// Batched writers, merged cross-shard scans, and per-shard-grouped MultiGet
// batches all race a thread that hammers FlushMemTable (which broadcasts to
// every shard) and CompactRange on a 4-shard router whose shards share one
// block cache, one Statistics, and one flush/compaction lane pair. The
// writers always rewrite identical bytes, so any read — point, batched, or
// merged scan — must see exactly the canonical value at any interleaving,
// and merged scans must stay globally sorted while shard flushes land
// underneath the per-shard child iterators.
TEST(ConcurrencyStressTest, ShardedWritersScansMultiGetRaceShardFlushes) {
  const std::string name = TestDir("sharded");
  std::filesystem::remove_all(name);

  DBOptions base;
  base.create_if_missing = true;
  // Small enough that the flush broadcast always finds a non-trivial
  // memtable on some shard.
  base.write_buffer_size = 64 * 1024;
  base.max_file_size = 32 * 1024;
  base.max_bytes_for_level_base = 128 * 1024;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());

  constexpr uint64_t kKeys = 1200;
  WriteOptions wo;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(wo, KeyOf(i), ValueOf(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> value_mismatches{0};
  std::atomic<uint64_t> order_violations{0};

  std::vector<std::thread> threads;
  threads.reserve(2 + 2 + 2 + 1);
  // Writers: multi-shard batches of identical-byte rewrites, so the router
  // splits nearly every batch while readers race the sub-batch commits.
  for (int w = 0; w < 2; w++) {
    threads.emplace_back([&db, &errors, &wo, w] {
      Random64 rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < 1500; i++) {
        WriteBatch batch;
        for (int b = 0; b < 8; b++) {
          const uint64_t k = rng.Uniform(kKeys);
          batch.Put(KeyOf(k), ValueOf(k));
        }
        if (!db->Write(wo, &batch).ok()) errors.fetch_add(1);
      }
    });
  }
  // Merged cross-shard scans.
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&db, &stop, &errors, &order_violations,
                          &value_mismatches, r] {
      Random64 rng(300 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        std::unique_ptr<Iterator> it = db->NewIterator(ReadOptions());
        it->Seek(KeyOf(rng.Uniform(kKeys)));
        std::string prev;
        int steps = 0;
        while (it->Valid() && steps++ < 100) {
          const std::string key = it->key().ToString();
          if (!prev.empty() && key <= prev) order_violations.fetch_add(1);
          if (it->value().ToString() !=
              ValueOf(std::stoull(key.substr(4)))) {
            value_mismatches.fetch_add(1);
          }
          prev = key;
          it->Next();
        }
        if (!it->status().ok()) errors.fetch_add(1);
      }
    });
  }
  // MultiGet batches that fan out over every shard.
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&db, &stop, &errors, &value_mismatches, r] {
      Random64 rng(500 + static_cast<uint64_t>(r));
      std::vector<std::string> key_storage;
      std::vector<Slice> keys;
      std::vector<std::string> values;
      std::vector<Status> statuses;
      while (!stop.load(std::memory_order_acquire)) {
        key_storage.clear();
        keys.clear();
        for (int j = 0; j < 16; j++) {
          key_storage.push_back(KeyOf(rng.Uniform(kKeys)));
        }
        for (const std::string& k : key_storage) keys.emplace_back(k);
        db->MultiGet(ReadOptions(), keys, &values, &statuses);
        for (size_t i = 0; i < keys.size(); i++) {
          if (!statuses[i].ok()) {
            errors.fetch_add(1);
          } else if (values[i] !=
                     ValueOf(std::stoull(key_storage[i].substr(4)))) {
            value_mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Flush broadcasts + full-range compactions race everything above.
  threads.emplace_back([&db, &stop] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(db->FlushMemTable().ok());
      if (++round % 5 == 0) {
        EXPECT_TRUE(db->CompactRange(nullptr, nullptr).ok());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int w = 0; w < 2; w++) {
    threads[static_cast<size_t>(w)].join();
  }
  stop.store(true, std::memory_order_release);
  for (size_t t = 2; t < threads.size(); t++) {
    threads[t].join();
  }

  EXPECT_EQ(0u, errors.load());
  EXPECT_EQ(0u, value_mismatches.load());
  EXPECT_EQ(0u, order_violations.load());

  db->WaitForCompaction();
  // Teardown races nothing: the shared lanes drain before the shards die.
  db.reset();

  // Reopen proves every shard's WAL + manifest survived the churn.
  std::unique_ptr<DB> reopened;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &reopened).ok());
  for (uint64_t i = 0; i < kKeys; i += 53) {
    std::string value;
    ASSERT_TRUE(reopened->Get(ReadOptions(), KeyOf(i), &value).ok())
        << KeyOf(i);
    EXPECT_EQ(ValueOf(i), value);
  }
  reopened.reset();
  std::filesystem::remove_all(name);
}

// ---------- PersistentCache: insert / lookup / evict / invalidate ----------

TEST(ConcurrencyStressTest, PersistentCacheInsertLookupEvict) {
  const std::string dir = TestDir("pcache");
  std::filesystem::remove_all(dir);

  PersistentCacheOptions options;
  options.dir = dir;
  // Tiny budget so concurrent Puts constantly evict.
  options.capacity_bytes = 64 * 1024;

  PersistentCache cache(options);

  constexpr int kThreads = 6;
  constexpr uint64_t kSsts = 8;
  constexpr uint64_t kBlocksPerSst = 32;
  constexpr size_t kBlockSize = 1024;

  std::atomic<uint64_t> bad_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, &bad_hits, t] {
      Random64 rng(77 + static_cast<uint64_t>(t));
      for (int op = 0; op < 2000; op++) {
        const uint64_t sst = rng.Uniform(kSsts);
        const uint64_t offset = rng.Uniform(kBlocksPerSst) * kBlockSize;
        const std::string expect =
            ValueOf(sst * 1000 + offset, kBlockSize);
        std::string got;
        if (cache.GetBlock(sst, offset, &got)) {
          // A hit must return exactly the bytes some thread inserted.
          if (got != expect) {
            bad_hits.fetch_add(1);
          }
        } else {
          cache.PutBlock(sst, offset, expect);
        }
      }
    });
  }
  // Concurrent compaction-driven invalidation of whole SSTs.
  threads.emplace_back([&cache] {
    Random64 rng(991);
    for (int i = 0; i < 100; i++) {
      cache.Invalidate(rng.Uniform(kSsts));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(0u, bad_hits.load());
  PersistentCacheStats stats = cache.GetStats();
  EXPECT_GT(stats.admissions, 0u);
  EXPECT_LE(stats.data_bytes, options.capacity_bytes);
  std::filesystem::remove_all(dir);
}

// Same traffic against the global-log layout: eviction + log GC under
// concurrency.
TEST(ConcurrencyStressTest, PersistentCacheGlobalLogLayout) {
  const std::string dir = TestDir("pcache_log");
  std::filesystem::remove_all(dir);

  PersistentCacheOptions options;
  options.dir = dir;
  options.capacity_bytes = 64 * 1024;
  options.layout = CacheLayout::kGlobalLog;
  options.log_file_bytes = 16 * 1024;

  PersistentCache cache(options);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, t] {
      Random64 rng(13 + static_cast<uint64_t>(t));
      for (int op = 0; op < 1000; op++) {
        const uint64_t sst = rng.Uniform(4);
        const uint64_t offset = rng.Uniform(64) * 512;
        std::string got;
        if (!cache.GetBlock(sst, offset, &got)) {
          cache.PutBlock(sst, offset, ValueOf(sst + offset, 512));
        }
        if (op % 251 == 0) {
          cache.Invalidate(sst);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  PersistentCacheStats stats = cache.GetStats();
  EXPECT_LE(stats.data_bytes, options.capacity_bytes);
  std::filesystem::remove_all(dir);
}

// ---------- MetadataStore: mutation during parallel recovery ----------

TEST(ConcurrencyStressTest, MetadataStoreConcurrentAdmitReadInvalidate) {
  const std::string dir = TestDir("meta");
  std::filesystem::remove_all(dir);
  Env* env = Env::Default();

  MetadataStore store(env, dir);

  // Parallel recovery replays segments through a pool while the foreground
  // keeps admitting and invalidating slabs — the exact overlap the store
  // sees when a flush races the recovery fan-out.
  constexpr uint64_t kSsts = 64;
  ThreadPool pool(4, "meta-recovery");
  std::atomic<uint64_t> mismatches{0};

  for (uint64_t sst = 0; sst < kSsts; sst++) {
    pool.Schedule([&store, &mismatches, sst] {
      const std::string tail = ValueOf(sst, 512);
      EXPECT_TRUE(store.Admit(sst, 4096, 4096 + tail.size(), tail).ok());
      std::string got;
      if (store.Read(sst, 4096, tail.size(), &got) && got != tail) {
        mismatches.fetch_add(1);
      }
    });
  }
  // Foreground mutation racing the recovery fan-out.
  std::thread mutator([&store, &mismatches] {
    Random64 rng(5);
    for (int i = 0; i < 500; i++) {
      const uint64_t sst = rng.Uniform(kSsts);
      switch (rng.Uniform(3)) {
        case 0:
          store.Invalidate(sst);
          break;
        case 1: {
          const std::string tail = ValueOf(sst, 512);
          // why unchecked: re-admission racing Invalidate may be rejected;
          // that churn is the point of the stress, not a failure.
          store.Admit(sst, 4096, 4096 + tail.size(), tail)
              .PermitUncheckedError();
          break;
        }
        default: {
          std::string got;
          if (store.Read(sst, 4096, 512, &got) &&
              got != ValueOf(sst, 512)) {
            mismatches.fetch_add(1);
          }
          break;
        }
      }
    }
  });

  pool.WaitIdle();
  mutator.join();
  pool.Shutdown();

  EXPECT_EQ(0u, mismatches.load());

  // Whatever survived the races must be re-indexed intact after "restart".
  MetadataStoreStats before = store.GetStats();
  MetadataStore reopened(env, dir);
  MetadataStoreStats after = reopened.GetStats();
  EXPECT_EQ(before.slabs, after.slabs);
  for (uint64_t sst = 0; sst < kSsts; sst++) {
    std::string got;
    if (reopened.Read(sst, 4096, 512, &got)) {
      EXPECT_EQ(ValueOf(sst, 512), got) << "sst " << sst;
    }
  }
  std::filesystem::remove_all(dir);
}

// ---------- ThreadPool: submit during shutdown ----------

TEST(ConcurrencyStressTest, ThreadPoolSubmitDuringShutdown) {
  for (int round = 0; round < 20; round++) {
    ThreadPool pool(3);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> stop{false};

    std::vector<std::thread> producers;
    producers.reserve(3);
    for (int p = 0; p < 3; p++) {
      producers.emplace_back([&pool, &executed, &accepted, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
          if (pool.Schedule([&executed] { executed.fetch_add(1); })) {
            accepted.fetch_add(1);
          } else {
            break;  // Pool is shutting down; no further submissions land.
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pool.Shutdown();  // Races the producers on purpose.
    stop.store(true, std::memory_order_release);
    for (auto& t : producers) {
      t.join();
    }
    // Shutdown drains the queue: every accepted task ran, none was lost.
    EXPECT_EQ(accepted.load(), executed.load()) << "round " << round;
  }
}

// ---------- Tracing: capture under churn, EndTrace racing traffic ----------

// 8 op threads (4 writers, 4 readers, some with iterators) run against
// flush + compaction churn while a trace captures everything; EndTrace is
// called from the main thread while the op threads are still issuing, so the
// per-thread buffers, the tracer's active flag, and the span hub all race
// real traffic. The resulting file must still parse cleanly end to end.
TEST(ConcurrencyStressTest, TraceCaptureUnderChurn) {
  const std::string dbname = TestDir("trace_churn");
  std::filesystem::remove_all(dbname);
  const std::string trace_path = dbname + "/churn.trace";

  DBOptions options;
  options.create_if_missing = true;
  options.write_buffer_size = 64 * 1024;
  options.max_file_size = 64 * 1024;
  options.max_bytes_for_level_base = 256 * 1024;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  trace::TraceOptions topts;
  topts.trace_spans = true;
  ASSERT_TRUE(db->StartTrace(topts, trace_path).ok());

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr uint64_t kKeysPerWriter = 600;
  std::atomic<bool> stop_readers{false};
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&db, &errors, w] {
      WriteOptions wo;
      for (uint64_t i = 0; i < kKeysPerWriter; i++) {
        const uint64_t k = static_cast<uint64_t>(w) * kKeysPerWriter + i;
        if (!db->Put(wo, KeyOf(k), ValueOf(k)).ok()) errors.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&db, &stop_readers, &errors, r] {
      ReadOptions ro;
      uint64_t i = 0;
      while (!stop_readers.load(std::memory_order_acquire)) {
        if (r % 2 == 0) {
          std::string value;
          Status s =
              db->Get(ro, KeyOf(i++ % (kWriters * kKeysPerWriter)), &value);
          if (!s.ok() && !s.IsNotFound()) errors.fetch_add(1);
        } else {
          auto it = db->NewIterator(ro);
          it->Seek(KeyOf(i++ % (kWriters * kKeysPerWriter)));
          for (int j = 0; j < 8 && it->Valid(); j++) it->Next();
          if (!it->status().ok()) errors.fetch_add(1);
        }
      }
    });
  }

  // End the capture while every op thread is still running: records issued
  // after the active flag drops are silently not recorded, never torn.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(db->EndTrace().ok());

  for (int w = 0; w < kWriters; w++) threads[w].join();
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();
  stop_readers.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); t++) threads[t].join();
  EXPECT_EQ(errors.load(), 0u);

  // The racily-ended capture is a complete, parseable trace.
  trace::TraceStats stats;
  ASSERT_TRUE(
      trace::TraceFileStats(Env::Default(), trace_path, &stats).ok());
  EXPECT_GT(stats.total_records, 0u);

  // A second capture on the same DB sees the post-churn traffic.
  ASSERT_TRUE(db->StartTrace(topts, dbname + "/second.trace").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "after-churn", "v").ok());
  ASSERT_TRUE(db->EndTrace().ok());
  ASSERT_TRUE(trace::TraceFileStats(Env::Default(), dbname + "/second.trace",
                                    &stats)
                  .ok());
  EXPECT_EQ(stats.op_counts[trace::kTracePut], 1u);
}

}  // namespace
}  // namespace rocksmash
