// ShardedDB: routing, the randomized model test across shard counts, batch
// splitting, cross-shard iteration, composite snapshots, property
// aggregation, and the SHARDS marker. See DESIGN.md "Sharding & shared
// resources" for the semantics under test.
#include "lsm/sharded_db.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/shared_resources.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string TestDir(const char* suffix) {
  return ::testing::TempDir() + "/rocksmash_sharded_" + suffix;
}

std::string KeyOf(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%08llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string ValueOf(uint64_t i, uint64_t version) {
  return "value-" + std::to_string(i) + "-v" + std::to_string(version);
}

DBOptions SmallOptions() {
  DBOptions o;
  o.create_if_missing = true;
  o.write_buffer_size = 64 * 1024;
  o.max_file_size = 64 * 1024;
  o.max_bytes_for_level_base = 256 * 1024;
  return o;
}

// ---------- Routing ----------

TEST(ShardedDBTest, ShardOfKeyIsStableAndCoversAllShards) {
  // Pure function of (key bytes, N): same inputs, same shard.
  for (uint32_t n : {1u, 2u, 5u, 8u}) {
    for (uint64_t i = 0; i < 64; i++) {
      const std::string key = KeyOf(i * 977);
      const uint32_t shard = ShardedDB::ShardOfKey(key, n);
      ASSERT_LT(shard, n);
      ASSERT_EQ(shard, ShardedDB::ShardOfKey(key, n));
    }
  }
  // With enough keys every shard receives traffic (no dead route).
  std::set<uint32_t> seen;
  for (uint64_t i = 0; i < 2000; i++) {
    seen.insert(ShardedDB::ShardOfKey(KeyOf(i), 8));
  }
  EXPECT_EQ(8u, seen.size());
}

// ---------- Randomized model test across shard counts ----------

// The store must behave exactly like a std::map under a randomized mix of
// puts, deletes, and multi-key batches, with flush/compaction churn and a
// mid-stream reopen, at every shard count (4 is the acceptance
// configuration). One seed per count so failures reproduce.
TEST(ShardedDBTest, RandomizedModelAcrossShardCounts) {
  for (int num_shards : {1, 2, 4, 8}) {
    const std::string name =
        TestDir(("model_" + std::to_string(num_shards)).c_str());
    std::filesystem::remove_all(name);

    DBOptions base = SmallOptions();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(ShardedDB::Open(base, name, num_shards, &db).ok());

    std::map<std::string, std::string> model;
    Random64 rng(0xdecaf000 + static_cast<uint64_t>(num_shards));
    constexpr uint64_t kKeySpace = 400;
    constexpr int kOps = 3000;
    WriteOptions wo;

    for (int op = 0; op < kOps; op++) {
      const uint64_t roll = rng.Uniform(10);
      if (roll < 6) {
        const uint64_t k = rng.Uniform(kKeySpace);
        const std::string key = KeyOf(k);
        const std::string value = ValueOf(k, static_cast<uint64_t>(op));
        ASSERT_TRUE(db->Put(wo, key, value).ok());
        model[key] = value;
      } else if (roll < 8) {
        const std::string key = KeyOf(rng.Uniform(kKeySpace));
        ASSERT_TRUE(db->Delete(wo, key).ok());
        model.erase(key);
      } else {
        // A batch whose keys scatter over every shard: must land whole.
        WriteBatch batch;
        for (int b = 0; b < 8; b++) {
          const uint64_t k = rng.Uniform(kKeySpace);
          const std::string key = KeyOf(k);
          if (b % 4 == 3) {
            batch.Delete(key);
            model.erase(key);
          } else {
            const std::string value = ValueOf(k, static_cast<uint64_t>(op));
            batch.Put(key, value);
            model[key] = value;
          }
        }
        ASSERT_TRUE(db->Write(wo, &batch).ok());
      }

      if (op % 500 == 499) {
        ASSERT_TRUE(db->FlushMemTable().ok());
      }
      if (op % 1100 == 1099) {
        ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());
      }
      if (op == kOps / 2) {
        // Mid-stream reopen: every shard recovers its own WAL + manifest.
        db.reset();
        ASSERT_TRUE(ShardedDB::Open(base, name, num_shards, &db).ok());
      }
    }
    db->WaitForCompaction();

    // Point reads: exactly the model, present and absent.
    for (uint64_t k = 0; k < kKeySpace; k++) {
      const std::string key = KeyOf(k);
      std::string value;
      Status s = db->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key << ": " << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
        EXPECT_EQ(it->second, value) << key;
      }
    }

    // Full scan: globally sorted and exactly the model's contents.
    std::unique_ptr<Iterator> iter = db->NewIterator(ReadOptions());
    iter->SeekToFirst();
    auto mit = model.begin();
    while (iter->Valid() && mit != model.end()) {
      EXPECT_EQ(mit->first, iter->key().ToString());
      EXPECT_EQ(mit->second, iter->value().ToString());
      iter->Next();
      ++mit;
    }
    EXPECT_TRUE(iter->status().ok());
    EXPECT_FALSE(iter->Valid()) << "scan produced extra keys";
    EXPECT_TRUE(mit == model.end()) << "scan missed " << mit->first;
    iter.reset();

    db.reset();
    ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
    EXPECT_FALSE(std::filesystem::exists(name + "/SHARDS"));
  }
}

// ---------- Batch splitting ----------

TEST(ShardedDBTest, BatchSplitTickerAndSingleShardPassthrough) {
  const std::string name = TestDir("batch_split");
  std::filesystem::remove_all(name);

  auto stats = CreateDBStatistics();
  DBOptions base = SmallOptions();
  base.statistics = stats.get();

  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());

  // Collect keys per shard so we can build single- and multi-shard batches
  // deterministically.
  std::vector<std::vector<std::string>> keys_by_shard(4);
  for (uint64_t i = 0; keys_by_shard[0].size() < 4 ||
                       keys_by_shard[1].size() < 4 ||
                       keys_by_shard[2].size() < 4 ||
                       keys_by_shard[3].size() < 4;
       i++) {
    const std::string key = KeyOf(i);
    keys_by_shard[ShardedDB::ShardOfKey(key, 4)].push_back(key);
  }

  // A batch confined to one shard forwards whole: no split recorded.
  {
    WriteBatch batch;
    for (const std::string& k : keys_by_shard[2]) batch.Put(k, "one-shard");
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    EXPECT_EQ(0u, stats->GetTickerCount(SHARD_WRITE_BATCHES_SPLIT));
  }

  // A batch spanning all four shards splits once and lands whole.
  {
    WriteBatch batch;
    for (const auto& shard_keys : keys_by_shard) {
      for (const std::string& k : shard_keys) batch.Put(k, "all-shards");
    }
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    EXPECT_EQ(1u, stats->GetTickerCount(SHARD_WRITE_BATCHES_SPLIT));
    for (const auto& shard_keys : keys_by_shard) {
      for (const std::string& k : shard_keys) {
        std::string value;
        ASSERT_TRUE(db->Get(ReadOptions(), k, &value).ok()) << k;
        EXPECT_EQ("all-shards", value);
      }
    }
  }

  // Deletes in a split batch land on their shards too.
  {
    WriteBatch batch;
    batch.Delete(keys_by_shard[0][0]);
    batch.Delete(keys_by_shard[3][0]);
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    std::string value;
    EXPECT_TRUE(
        db->Get(ReadOptions(), keys_by_shard[0][0], &value).IsNotFound());
    EXPECT_TRUE(
        db->Get(ReadOptions(), keys_by_shard[3][0], &value).IsNotFound());
  }

  db.reset();
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

// ---------- MultiGet ----------

TEST(ShardedDBTest, MultiGetGroupsPerShardAndPreservesOrder) {
  const std::string name = TestDir("multiget");
  std::filesystem::remove_all(name);

  auto stats = CreateDBStatistics();
  DBOptions base = SmallOptions();
  base.statistics = stats.get();

  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());

  constexpr uint64_t kKeys = 200;
  for (uint64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i, 0)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  // Mixed batch: present keys interleaved with misses; results must come
  // back in request order despite the per-shard regrouping.
  std::vector<std::string> key_storage;
  for (uint64_t i = 0; i < 64; i++) {
    key_storage.push_back(i % 3 == 2 ? "absent-" + std::to_string(i)
                                     : KeyOf(i * 3 % kKeys));
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db->MultiGet(ReadOptions(), keys, &values, &statuses);
  ASSERT_EQ(keys.size(), values.size());
  ASSERT_EQ(keys.size(), statuses.size());
  for (size_t i = 0; i < keys.size(); i++) {
    if (i % 3 == 2) {
      EXPECT_TRUE(statuses[i].IsNotFound()) << key_storage[i];
    } else {
      ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
      EXPECT_EQ(ValueOf(i * 3 % kKeys, 0), values[i]);
    }
  }
  // The batch fanned out to more than one shard.
  EXPECT_GE(stats->GetTickerCount(SHARD_MULTIGET_FANOUT), 2u);

  db.reset();
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

// ---------- Iterators and snapshots ----------

TEST(ShardedDBTest, CrossShardIteratorIsGloballySorted) {
  const std::string name = TestDir("iter");
  std::filesystem::remove_all(name);

  DBOptions base = SmallOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 8, &db).ok());

  std::map<std::string, std::string> model;
  Random64 rng(42);
  for (int i = 0; i < 800; i++) {
    const uint64_t k = rng.Uniform(100000);
    const std::string key = KeyOf(k);
    const std::string value = ValueOf(k, 0);
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    model[key] = value;
    if (i % 200 == 199) {
      ASSERT_TRUE(db->FlushMemTable().ok());
    }
  }

  // Seek into the middle: the merged view starts at the right key and stays
  // strictly increasing across shard boundaries.
  const std::string target = KeyOf(50000);
  std::unique_ptr<Iterator> it = db->NewIterator(ReadOptions());
  it->Seek(target);
  auto mit = model.lower_bound(target);
  while (mit != model.end()) {
    ASSERT_TRUE(it->Valid()) << "iterator ended before " << mit->first;
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
    it->Next();
    ++mit;
  }
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());

  // SeekToLast lands on the global maximum.
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(model.rbegin()->first, it->key().ToString());
  it.reset();

  db.reset();
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

TEST(ShardedDBTest, CompositeSnapshotPinsEveryShard) {
  const std::string name = TestDir("snapshot");
  std::filesystem::remove_all(name);

  DBOptions base = SmallOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());

  for (uint64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i, 1)).ok());
  }
  const Snapshot* snap = db->GetSnapshot();
  // Overwrite and delete after the snapshot, touching every shard.
  for (uint64_t i = 0; i < 100; i++) {
    if (i % 2 == 0) {
      ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i, 2)).ok());
    } else {
      ASSERT_TRUE(db->Delete(WriteOptions(), KeyOf(i)).ok());
    }
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  ReadOptions ro;
  ro.snapshot = snap;
  for (uint64_t i = 0; i < 100; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ro, KeyOf(i), &value).ok()) << KeyOf(i);
    EXPECT_EQ(ValueOf(i, 1), value);
  }
  // Snapshot scans see the pinned view too.
  std::unique_ptr<Iterator> it = db->NewIterator(ro);
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(100u, n);
  it.reset();
  db->ReleaseSnapshot(snap);

  // Without the snapshot, the post-snapshot state is visible.
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), KeyOf(1), &value).IsNotFound());
  ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(0), &value).ok());
  EXPECT_EQ(ValueOf(0, 2), value);

  db.reset();
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

// ---------- Property aggregation ----------

TEST(ShardedDBTest, PropertyAggregationAndShardPassthrough) {
  const std::string name = TestDir("props");
  std::filesystem::remove_all(name);

  auto stats = CreateDBStatistics();
  DBOptions base = SmallOptions();
  base.statistics = stats.get();

  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());

  for (uint64_t i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i, 0)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();

  // Aggregate num-files-at-level<L> equals the sum of the shard
  // passthrough values over every level with files.
  uint64_t files_direct = 0;
  uint64_t files_via_shards = 0;
  for (int level = 0; level < 7; level++) {
    std::string v;
    ASSERT_TRUE(db->GetProperty(
        "rocksmash.num-files-at-level" + std::to_string(level), &v));
    files_direct += std::stoull(v);
    for (int i = 0; i < 4; i++) {
      ASSERT_TRUE(
          db->GetProperty("rocksmash.shard." + std::to_string(i) +
                              ".num-files-at-level" + std::to_string(level),
                          &v));
      files_via_shards += std::stoull(v);
    }
  }
  EXPECT_GT(files_direct, 0u);
  EXPECT_EQ(files_direct, files_via_shards);

  // Memtable usage sums the same way.
  std::string v;
  ASSERT_TRUE(db->GetProperty("rocksmash.memtable-memory-usage", &v));
  uint64_t direct = std::stoull(v);
  uint64_t via_shards = 0;
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(db->GetProperty("rocksmash.shard." + std::to_string(i) +
                                    ".memtable-memory-usage",
                                &v));
    via_shards += std::stoull(v);
  }
  EXPECT_EQ(direct, via_shards);

  // One Statistics serves the whole group: the map-valued stats property
  // carries each ticker exactly once, not once per shard.
  std::map<std::string, std::string> ticker_map;
  ASSERT_TRUE(db->GetProperty("rocksmash.stats", &ticker_map));
  ASSERT_EQ(1u, ticker_map.count("flush.lane.bytes.written"));
  EXPECT_GT(std::stoull(ticker_map["flush.lane.bytes.written"]), 0u);

  // The string form concatenates per-shard sections.
  std::string stats_str;
  ASSERT_TRUE(db->GetProperty("rocksmash.stats", &stats_str));
  EXPECT_NE(std::string::npos, stats_str.find("--- shard 0 ---"));
  EXPECT_NE(std::string::npos, stats_str.find("--- shard 3 ---"));

  // bg-jobs reports one line per shard.
  std::string jobs;
  ASSERT_TRUE(db->GetProperty("rocksmash.bg-jobs", &jobs));
  EXPECT_NE(std::string::npos, jobs.find("shard0:"));
  EXPECT_NE(std::string::npos, jobs.find("shard3:"));

  // Unknown properties and out-of-range shard indices fail cleanly.
  EXPECT_FALSE(db->GetProperty("rocksmash.shard.9.stats", &v));
  EXPECT_FALSE(db->GetProperty("rocksmash.no-such-property", &v));

  db.reset();
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

// ---------- Shared resources ----------

TEST(ShardedDBTest, ShardsDrawFromOneSharedResources) {
  const std::string name = TestDir("shared");
  std::filesystem::remove_all(name);

  auto stats = CreateDBStatistics();
  SharedResourcesOptions sro;
  sro.block_cache_bytes = 4 * 1024 * 1024;
  sro.flush_threads = 2;
  sro.compaction_threads = 2;
  sro.statistics = stats.get();
  std::shared_ptr<SharedResources> shared;
  ASSERT_TRUE(SharedResources::Create(sro, &shared).ok());

  DBOptions base = SmallOptions();
  base.shared_resources = shared;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());
  auto* sharded = static_cast<ShardedDB*>(db.get());
  EXPECT_EQ(4u, sharded->num_shards());

  for (uint64_t i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), KeyOf(i), ValueOf(i, 0)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->WaitForCompaction();

  // Every shard's traffic lands in the one shared Statistics.
  EXPECT_GT(stats->GetTickerCount(FLUSH_LANE_BYTES_WRITTEN), 0u);

  // The shared cache served reads for keys on every shard.
  for (uint64_t i = 0; i < 1000; i += 7) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(i), &value).ok());
  }
  Cache::Stats cache_stats = shared->block_cache()->GetStats();
  EXPECT_GT(cache_stats.hits + cache_stats.misses, 0u);

  db.reset();
  // The SharedResources outlives the DB: pools are still usable (a second
  // open against the same handle works).
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), KeyOf(3), &value).ok());
  EXPECT_EQ(ValueOf(3, 0), value);
  db.reset();
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

// ---------- SHARDS marker ----------

TEST(ShardedDBTest, ShardMarkerRejectsMismatchedReopen) {
  const std::string name = TestDir("marker");
  std::filesystem::remove_all(name);

  DBOptions base = SmallOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  db.reset();

  int persisted = 0;
  ASSERT_TRUE(
      ShardedDB::ReadShardMarker(Env::Default(), name, &persisted).ok());
  EXPECT_EQ(4, persisted);

  // A different count would strand keys in unreachable directories.
  Status s = ShardedDB::Open(base, name, 2, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(nullptr, db.get());

  // The original count still opens and finds the data.
  ASSERT_TRUE(ShardedDB::Open(base, name, 4, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("v", value);
  db.reset();

  // A fresh directory has no marker.
  const std::string fresh = TestDir("marker_fresh");
  std::filesystem::remove_all(fresh);
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(fresh).ok());
  EXPECT_TRUE(
      ShardedDB::ReadShardMarker(Env::Default(), fresh, &persisted)
          .IsNotFound());

  std::filesystem::remove_all(fresh);
  ASSERT_TRUE(ShardedDB::Destroy(DBOptions(), name).ok());
}

TEST(ShardedDBTest, OpenValidatesArguments) {
  std::unique_ptr<DB> db;
  EXPECT_TRUE(
      ShardedDB::Open(DBOptions(), TestDir("bad"), 0, &db).IsInvalidArgument());
  EXPECT_TRUE(ShardedDB::Open(std::vector<ShardedDB::ShardSpec>(), &db)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace rocksmash
