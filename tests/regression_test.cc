// Regression tests for behaviours found and fixed during the reproduction:
//   - L0 point lookups must be sequence-aware (recovery writes one L0 file
//     per WAL shard, so file numbers do not order freshness),
//   - obsolete cloud-resident tables must be garbage-collected (GC used to
//     scan only the local directory),
//   - RAM block cache must survive table-reader eviction + reopen,
//   - upload failures during install must surface, not corrupt,
//   - YCSB A/E/F end-to-end.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/kvstore.h"
#include "env/env.h"
#include "lsm/db_impl.h"
#include "mash/ewal.h"
#include "mash/rocksmash_db.h"
#include "util/clock.h"
#include "workload/ycsb.h"

namespace rocksmash {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/rocksmash_reg_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// The L0 freshness regression: recover from an eWAL where the same key was
// overwritten many times, so its versions land in different shards and thus
// different L0 files with interleaved sequence ranges. Every read must
// return the newest version — through Get, iterators, and after further
// flushes.
TEST(L0SequenceAwareness, OverwritesAcrossShardsReadNewest) {
  std::string dbname = TestDir("l0seq");
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());
  EWalOptions ew;
  ew.segments = 8;
  auto wal = NewEWalManager(Env::Default(), dbname, ew);
  DBOptions options;
  options.wal_manager = wal.get();
  options.write_buffer_size = 64 << 20;

  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    for (int version = 0; version < 16; version++) {
      for (int k = 0; k < 64; k++) {
        ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(k),
                            "v" + std::to_string(version))
                        .ok());
      }
    }
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  // Recovery produced multiple overlapping L0 files.
  ASSERT_GT(db->GetRecoveryStats().memtables_flushed, 1u);

  std::string value;
  for (int k = 0; k < 64; k++) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(k), &value).ok());
    EXPECT_EQ("v15", value) << k;
  }

  // Iterators must agree. (Scoped: iterators must not outlive the DB.)
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next(), n++) {
      EXPECT_EQ("v15", it->value().ToString());
    }
    EXPECT_EQ(64, n);
  }

  // And the state must stay correct after compaction merges the files.
  ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());
  for (int k = 0; k < 64; k++) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(k), &value).ok());
    EXPECT_EQ("v15", value) << k;
  }
  db.reset();
  std::filesystem::remove_all(dbname);
}

// Deletions must also win by sequence across interleaved L0 files.
TEST(L0SequenceAwareness, DeletesAcrossShards) {
  std::string dbname = TestDir("l0del");
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());
  EWalOptions ew;
  ew.segments = 4;
  auto wal = NewEWalManager(Env::Default(), dbname, ew);
  DBOptions options;
  options.wal_manager = wal.get();
  options.write_buffer_size = 64 << 20;

  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    for (int k = 0; k < 32; k++) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), "key" + std::to_string(k), "live").ok());
    }
    for (int k = 0; k < 32; k += 2) {
      ASSERT_TRUE(db->Delete(WriteOptions(), "key" + std::to_string(k)).ok());
    }
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string value;
  for (int k = 0; k < 32; k++) {
    Status s = db->Get(ReadOptions(), "key" + std::to_string(k), &value);
    if (k % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << k;
    } else {
      EXPECT_TRUE(s.ok()) << k;
    }
  }
  db.reset();
  std::filesystem::remove_all(dbname);
}

// Cloud GC regression: after heavy overwrites + full compaction, the bucket
// must not hold obsolete table objects (bytes stored ~ live tree size).
TEST(CloudGc, ObsoleteCloudTablesAreDeleted) {
  std::string dir = TestDir("cloudgc");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 1;
  model.put_first_byte_micros = 1;
  model.delete_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  RocksMashOptions opt;
  opt.local_dir = dir;
  opt.cloud = cloud.get();
  opt.cloud_level_start = 1;
  opt.write_buffer_size = 64 * 1024;
  opt.max_file_size = 64 * 1024;

  std::unique_ptr<RocksMashDB> db;
  ASSERT_TRUE(RocksMashDB::Open(opt, &db).ok());

  // Three generations of full overwrites.
  for (int gen = 0; gen < 3; gen++) {
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                          "gen" + std::to_string(gen) + "-" +
                              std::string(100, 'x'))
                      .ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());
    db->WaitForCompaction();
  }
  ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());

  auto stats = db->Stats();
  const uint64_t live = stats.storage.cloud_bytes;
  const uint64_t stored = cloud->BytesStored();
  // The bucket holds the live tree, not three generations of it.
  EXPECT_LE(stored, live + (64 << 10));
  EXPECT_GT(cloud->Counters().deletes, 0u);
  db.reset();
  std::filesystem::remove_all(dir);
}

// Block-cache persistence across table-reader eviction: with a 1-entry
// table cache, alternating reads between two SSTs forces constant reopen;
// the RAM block cache must still serve repeated blocks.
TEST(BlockCachePersistence, SurvivesTableReaderEviction) {
  std::string dir = TestDir("bcpersist");
  SchemeOptions options;
  options.kind = SchemeKind::kLocalOnly;
  options.local_dir = dir;
  options.write_buffer_size = 32 * 1024;
  options.max_file_size = 32 * 1024;
  options.max_open_files = 1;
  options.block_cache_bytes = 4 << 20;

  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());
  for (int i = 0; i < 2000; i++) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    ASSERT_TRUE(store->Put(WriteOptions(), buf, std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  store->WaitForCompaction();

  // Alternate between far-apart keys (different SSTs) repeatedly.
  std::string value;
  for (int round = 0; round < 50; round++) {
    ASSERT_TRUE(store->Get(ReadOptions(), "key000010", &value).ok());
    ASSERT_TRUE(store->Get(ReadOptions(), "key001990", &value).ok());
  }
  auto stats = store->Stats();
  // Without number-keyed cache ids every reopen would miss; with them the
  // steady state is nearly all hits.
  EXPECT_GT(stats.block_cache.hits, 80u);
  store.reset();
  std::filesystem::remove_all(dir);
}

// Transient upload failures are absorbed by the retry loop: with every
// second request failing, installs still succeed (each Put is retried up
// to cloud_retry_attempts times).
TEST(UploadFaults, TransientFailuresRetried) {
  std::string dir = TestDir("uploadretry");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  ts.cloud_retry_attempts = 3;
  ts.retry_clock = &clock;  // Virtual backoff: the test doesn't sleep.
  TieredTableStorage storage(ts);

  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  CloudFaultPolicy policy;
  policy.fail_every_n = 2;  // Every other request fails.
  injectable->SetFaultPolicy(policy);

  for (uint64_t n = 1; n <= 8; n++) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(storage.NewStagingFile(n, &f).ok());
    ASSERT_TRUE(f->Append(std::string(500, 'u')).ok());
    ASSERT_TRUE(f->Close().ok());
    EXPECT_TRUE(storage.Install(n, 0, 500, 400).ok()) << n;
  }
  EXPECT_GT(storage.RetriedUploads(), 0u);
  std::filesystem::remove_all(dir);
}

// Upload failure during install must surface as an error (and not publish
// the file), leaving the store consistent for retries.
TEST(UploadFaults, InstallFailureSurfaces) {
  std::string dir = TestDir("uploadfault");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.put_first_byte_micros = 1;
  auto cloud = NewMemObjectStore(&clock, model);

  TieredStorageOptions ts;
  ts.local_dir = dir;
  ts.cloud = cloud.get();
  ts.cloud_level_start = 0;
  TieredTableStorage storage(ts);

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(storage.NewStagingFile(1, &f).ok());
  ASSERT_TRUE(f->Append(std::string(1000, 'x')).ok());
  ASSERT_TRUE(f->Close().ok());

  auto* injectable = dynamic_cast<FaultInjectable*>(cloud.get());
  CloudFaultPolicy policy;
  policy.unavailable = true;
  injectable->SetFaultPolicy(policy);

  Status s = storage.Install(1, 0, 1000, 900);
  EXPECT_FALSE(s.ok());

  // Clear the outage and retry: the staging file is still there.
  policy.unavailable = false;
  injectable->SetFaultPolicy(policy);
  EXPECT_TRUE(storage.Install(1, 0, 1000, 900).ok());
  std::unique_ptr<BlockSource> source;
  uint64_t size;
  EXPECT_TRUE(storage.OpenTable(1, &source, &size).ok());
  EXPECT_EQ(1000u, size);
  std::filesystem::remove_all(dir);
}

// YCSB A, E (scans), F (read-modify-write) end-to-end on RocksMash.
TEST(YcsbOnMash, WorkloadsAEF) {
  std::string dir = TestDir("ycsb_aef");
  SimClock clock;
  CloudLatencyModel model;
  model.jitter_micros = 0;
  model.get_first_byte_micros = 2;
  model.put_first_byte_micros = 2;
  auto cloud = NewMemObjectStore(&clock, model);

  SchemeOptions options;
  options.kind = SchemeKind::kRocksMash;
  options.local_dir = dir;
  options.cloud = cloud.get();
  options.write_buffer_size = 64 * 1024;
  options.max_file_size = 64 * 1024;
  options.cloud_level_start = 1;

  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenKVStore(options, &store).ok());

  YcsbSpec base;
  base.record_count = 2000;
  base.operation_count = 1500;
  base.value_size = 64;
  ASSERT_TRUE(YcsbLoad(store.get(), base).ok());
  ASSERT_TRUE(store->FlushMemTable().ok());
  store->WaitForCompaction();

  for (char w : {'A', 'E', 'F'}) {
    YcsbSpec spec = YcsbWorkload(w, base);
    YcsbResult r = YcsbRun(store.get(), spec);
    EXPECT_EQ(0u, r.errors) << w;
    EXPECT_GT(r.throughput_ops_sec, 0) << w;
    if (w == 'E') {
      EXPECT_GT(r.scan_latency_us.Count(), 0u);
    }
    if (w == 'F') {
      EXPECT_GT(r.rmw_latency_us.Count(), 0u);
    }
  }
  store.reset();
  std::filesystem::remove_all(dir);
}

// eWAL durability: after Sync() returns, a "crash" (no clean close) must
// preserve every synced record even though segments are striped.
TEST(EWalDurability, SyncedWritesSurviveAcrossSegments) {
  std::string dbname = TestDir("ewal_sync");
  ASSERT_TRUE(Env::Default()->CreateDirRecursively(dbname).ok());
  EWalOptions ew;
  ew.segments = 4;
  auto wal = NewEWalManager(Env::Default(), dbname, ew);
  DBOptions options;
  options.wal_manager = wal.get();
  options.write_buffer_size = 8 << 20;

  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    WriteOptions sync;
    sync.sync = true;
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(
          db->Put(sync, "k" + std::to_string(i), "v" + std::to_string(i))
              .ok());
    }
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("v" + std::to_string(i), value);
  }
  db.reset();
  std::filesystem::remove_all(dbname);
}

}  // namespace
}  // namespace rocksmash
