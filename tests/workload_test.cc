// Tests for the workload generators: distributions, YCSB presets, drivers.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "workload/driver.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

namespace rocksmash {
namespace {

// ---------- Distributions ----------

TEST(ZipfTest, InRange) {
  ZipfianChooser zipf(1000, 0.99, 1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewTowardLowRanks) {
  ZipfianChooser zipf(10000, 0.99, 2);
  uint64_t low = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    if (zipf.Next() < 100) low++;  // Top 1% of ranks.
  }
  // Zipf(0.99): top 1% of items draw a large share (empirically ~60%+).
  EXPECT_GT(low, static_cast<uint64_t>(kSamples) * 40 / 100);
}

TEST(ZipfTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfianChooser scrambled(10000, 0.99, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[scrambled.Next()]++;
  }
  // The hottest key should not be key 0 systematically — scrambling moves
  // the popular ranks around; check the hottest keys are spread out.
  uint64_t hottest = 0;
  int hottest_count = 0;
  for (auto& [k, c] : counts) {
    if (c > hottest_count) {
      hottest = k;
      hottest_count = c;
    }
  }
  EXPECT_GT(hottest_count, 100);  // Still skewed.
  // Scrambled: hot key is a hashed value, overwhelmingly not item 0/1.
  EXPECT_GT(hottest, 10u);
}

TEST(ZipfTest, LatestFavorsRecentItems) {
  LatestChooser latest(10000, 0.99, 4);
  uint64_t recent = 0;
  for (int i = 0; i < 10000; i++) {
    if (latest.Next() >= 9900) recent++;  // Most recent 1%.
  }
  EXPECT_GT(recent, 4000u);
}

TEST(ZipfTest, SetItemCountExtends) {
  ZipfianChooser zipf(100, 0.99, 5);
  zipf.SetItemCount(200);
  bool saw_beyond_100 = false;
  for (int i = 0; i < 10000; i++) {
    uint64_t v = zipf.Next();
    EXPECT_LT(v, 200u);
    if (v >= 100) saw_beyond_100 = true;
  }
  EXPECT_TRUE(saw_beyond_100);
}

TEST(UniformTest, RoughlyUniform) {
  UniformChooser uniform(10, 6);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[uniform.Next()]++;
  }
  for (uint64_t k = 0; k < 10; k++) {
    EXPECT_GT(counts[k], 8000);
    EXPECT_LT(counts[k], 12000);
  }
}

// ---------- YCSB presets ----------

TEST(YcsbSpecTest, PresetsSumToOne) {
  for (char w : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    YcsbSpec spec = YcsbWorkload(w);
    double total = spec.read_proportion + spec.update_proportion +
                   spec.insert_proportion + spec.scan_proportion +
                   spec.rmw_proportion;
    EXPECT_NEAR(1.0, total, 1e-9) << w;
  }
}

TEST(YcsbSpecTest, PresetMixes) {
  EXPECT_DOUBLE_EQ(0.5, YcsbWorkload('A').read_proportion);
  EXPECT_DOUBLE_EQ(0.95, YcsbWorkload('B').read_proportion);
  EXPECT_DOUBLE_EQ(1.0, YcsbWorkload('C').read_proportion);
  EXPECT_EQ(Distribution::kLatest, YcsbWorkload('D').distribution);
  EXPECT_DOUBLE_EQ(0.95, YcsbWorkload('E').scan_proportion);
  EXPECT_DOUBLE_EQ(0.5, YcsbWorkload('F').rmw_proportion);
}

TEST(YcsbKeyTest, DeterministicAndSized) {
  YcsbSpec spec;
  spec.key_size = 24;
  EXPECT_EQ(YcsbKey(spec, 7), YcsbKey(spec, 7));
  EXPECT_NE(YcsbKey(spec, 7), YcsbKey(spec, 8));
  EXPECT_GE(YcsbKey(spec, 7).size(), spec.key_size);
  EXPECT_EQ(spec.value_size, YcsbValue(spec, 7, 0).size());
}

// ---------- End-to-end workload run on a real store ----------

class WorkloadRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rocksmash_workload";
    std::filesystem::remove_all(dir_);
    SchemeOptions options;
    options.kind = SchemeKind::kLocalOnly;
    options.local_dir = dir_;
    options.write_buffer_size = 256 * 1024;
    ASSERT_TRUE(OpenKVStore(options, &store_).ok());
  }

  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<KVStore> store_;
};

TEST_F(WorkloadRunTest, YcsbLoadThenRunB) {
  YcsbSpec spec = YcsbWorkload('B');
  spec.record_count = 2000;
  spec.operation_count = 2000;
  spec.value_size = 64;
  ASSERT_TRUE(YcsbLoad(store_.get(), spec).ok());
  YcsbResult result = YcsbRun(store_.get(), spec);
  EXPECT_EQ(2000u, result.operations);
  EXPECT_EQ(0u, result.errors);
  // All read keys were loaded; YCSB-B has no inserts.
  EXPECT_EQ(0u, result.not_found);
  EXPECT_GT(result.throughput_ops_sec, 0);
  EXPECT_GT(result.read_latency_us.Count(), 0u);
  EXPECT_GT(result.update_latency_us.Count(), 0u);
}

TEST_F(WorkloadRunTest, YcsbBatchedReadsMatchPointReads) {
  YcsbSpec spec = YcsbWorkload('C');
  spec.record_count = 2000;
  spec.operation_count = 200;
  spec.value_size = 64;
  ASSERT_TRUE(YcsbLoad(store_.get(), spec).ok());

  // Batched reads issue one MultiGet of read_batch keys per read op; all
  // loaded keys must resolve (workload C never inserts or deletes).
  spec.read_batch = 8;
  YcsbResult result = YcsbRun(store_.get(), spec);
  EXPECT_EQ(200u, result.operations);
  EXPECT_EQ(0u, result.errors);
  EXPECT_EQ(0u, result.not_found);
  EXPECT_EQ(200u, result.read_latency_us.Count());
}

TEST_F(WorkloadRunTest, MultiGetRandomDriver) {
  DriverSpec spec;
  spec.num_keys = 2000;
  spec.num_ops = 512;
  spec.value_size = 64;
  spec.batch_size = 16;
  DriverResult fill = FillSeq(store_.get(), spec);
  EXPECT_EQ(0u, fill.errors);

  DriverResult r = MultiGetRandom(store_.get(), spec);
  EXPECT_EQ(0u, r.errors);
  EXPECT_EQ(0u, r.not_found);  // FillSeq wrote every key in range.
  EXPECT_EQ(spec.num_ops, r.operations);
  // One latency sample per batch, keys counted individually.
  EXPECT_EQ(spec.num_ops / 16, r.latency_us.Count());
}

TEST_F(WorkloadRunTest, YcsbWorkloadDInsertsAreReadable) {
  YcsbSpec spec = YcsbWorkload('D');
  spec.record_count = 1000;
  spec.operation_count = 2000;
  spec.value_size = 64;
  ASSERT_TRUE(YcsbLoad(store_.get(), spec).ok());
  YcsbResult result = YcsbRun(store_.get(), spec);
  EXPECT_EQ(0u, result.errors);
  EXPECT_GT(result.insert_latency_us.Count(), 0u);
}

TEST_F(WorkloadRunTest, DriversRoundTrip) {
  DriverSpec spec;
  spec.num_keys = 2000;
  spec.num_ops = 1000;
  spec.value_size = 64;

  DriverResult fill = FillRandom(store_.get(), spec);
  EXPECT_EQ(0u, fill.errors);

  DriverResult reads = ReadRandom(store_.get(), spec);
  EXPECT_EQ(0u, reads.errors);
  // fillrandom with uniform keys leaves some keys unwritten; zipfian reads
  // may hit them. Just bound the miss rate.
  EXPECT_LT(reads.not_found, spec.num_ops);

  DriverResult scans = ScanRandom(store_.get(), spec);
  EXPECT_EQ(0u, scans.errors);

  DriverResult rww = ReadWhileWriting(store_.get(), spec);
  EXPECT_EQ(0u, rww.errors);
}

TEST_F(WorkloadRunTest, FillSeqIsOrdered) {
  DriverSpec spec;
  spec.num_keys = 1000;
  spec.value_size = 32;
  DriverResult fill = FillSeq(store_.get(), spec);
  EXPECT_EQ(0u, fill.errors);

  std::unique_ptr<Iterator> it(store_->NewIterator(ReadOptions()));
  uint64_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(DriverKey(spec, n), it->key().ToString());
    n++;
  }
  EXPECT_EQ(spec.num_keys, n);
}

}  // namespace
}  // namespace rocksmash
