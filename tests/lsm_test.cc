// Tests for LSM internals: internal key format, skiplist, memtable,
// write batch, version edit encoding.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "lsm/skiplist.h"
#include "lsm/version_edit.h"
#include "lsm/version_set.h"
#include "lsm/write_batch.h"
#include "util/arena.h"
#include "util/random.h"

namespace rocksmash {
namespace {

// ---------- dbformat ----------

TEST(DbFormatTest, InternalKeyRoundTrip) {
  ParsedInternalKey parsed("user_key", 42, kTypeValue);
  std::string encoded;
  AppendInternalKey(&encoded, parsed);

  ParsedInternalKey decoded;
  ASSERT_TRUE(ParseInternalKey(encoded, &decoded));
  EXPECT_EQ("user_key", decoded.user_key.ToString());
  EXPECT_EQ(42u, decoded.sequence);
  EXPECT_EQ(kTypeValue, decoded.type);
}

TEST(DbFormatTest, ParseRejectsMalformed) {
  ParsedInternalKey decoded;
  EXPECT_FALSE(ParseInternalKey("short", &decoded));
}

TEST(DbFormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  // Same user key: higher sequence sorts first.
  InternalKey new_key("k", 10, kTypeValue);
  InternalKey old_key("k", 5, kTypeValue);
  EXPECT_LT(icmp.Compare(new_key.Encode(), old_key.Encode()), 0);

  // Different user keys dominate.
  InternalKey a("a", 1, kTypeValue);
  InternalKey b("b", 100, kTypeValue);
  EXPECT_LT(icmp.Compare(a.Encode(), b.Encode()), 0);

  // Deletion sorts after value at same (key, seq): type descending.
  InternalKey val("k", 7, kTypeValue);
  InternalKey del("k", 7, kTypeDeletion);
  EXPECT_LT(icmp.Compare(val.Encode(), del.Encode()), 0);
}

TEST(DbFormatTest, LookupKeyViews) {
  LookupKey lkey("mykey", 99);
  EXPECT_EQ("mykey", lkey.user_key().ToString());
  Slice ikey = lkey.internal_key();
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(99u, parsed.sequence);
  EXPECT_EQ("mykey", parsed.user_key.ToString());
}

TEST(DbFormatTest, InternalComparatorSeparators) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  InternalKey a("abcdef", 50, kTypeValue);
  InternalKey z("abzzzz", 10, kTypeValue);
  std::string sep = a.Encode().ToString();
  icmp.FindShortestSeparator(&sep, z.Encode());
  EXPECT_LT(icmp.Compare(a.Encode(), sep), 0);
  EXPECT_LT(icmp.Compare(sep, z.Encode()), 0);
  EXPECT_LE(sep.size(), a.Encode().size());
}

// ---------- SkipList ----------

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::set<uint64_t> model;
  Random64 rng(5);
  for (int i = 0; i < 2000; i++) {
    uint64_t v = rng.Uniform(10000);
    if (model.insert(v).second) {
      list.Insert(v);
    }
  }
  for (uint64_t v = 0; v < 10000; v++) {
    EXPECT_EQ(model.count(v) > 0, list.Contains(v));
  }
}

TEST(SkipListTest, IterationOrder) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::set<uint64_t> model;
  Random64 rng(6);
  for (int i = 0; i < 500; i++) {
    uint64_t v = rng.Uniform(100000);
    if (model.insert(v).second) {
      list.Insert(v);
    }
  }
  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  auto expect = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(*expect, it.key());
  }
  EXPECT_EQ(expect, model.end());

  // Seek.
  it.Seek(*model.begin());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(*model.begin(), it.key());

  // SeekToLast + Prev.
  it.SeekToLast();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(*model.rbegin(), it.key());
}

TEST(SkipListTest, ConcurrentReadersDuringInsert) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::atomic<uint64_t> inserted{0};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t upper = inserted.load(std::memory_order_acquire);
      // Everything published as inserted must be visible.
      for (uint64_t v = 0; v < upper; v += 17) {
        EXPECT_TRUE(list.Contains(v));
      }
    }
  });

  for (uint64_t v = 0; v < 20000; v++) {
    list.Insert(v);
    inserted.store(v + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

// ---------- MemTable ----------

TEST(MemTableTest, AddAndGet) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  mem->Add(1, kTypeValue, "k", "v1");
  mem->Add(2, kTypeValue, "k", "v2");

  std::string value;
  Status s;
  // Lookup at seq 2 sees latest.
  EXPECT_TRUE(mem->Get(LookupKey("k", 2), &value, &s));
  EXPECT_EQ("v2", value);
  // Lookup at seq 1 sees old version.
  EXPECT_TRUE(mem->Get(LookupKey("k", 1), &value, &s));
  EXPECT_EQ("v1", value);
  // Absent key.
  EXPECT_FALSE(mem->Get(LookupKey("other", 2), &value, &s));
  mem->Unref();
}

TEST(MemTableTest, DeletionVisible) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  mem->Add(1, kTypeValue, "k", "v");
  mem->Add(2, kTypeDeletion, "k", "");
  std::string value;
  Status s;
  EXPECT_TRUE(mem->Get(LookupKey("k", 5), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  mem->Unref();
}

TEST(MemTableTest, IteratorYieldsInternalOrder) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  mem->Add(3, kTypeValue, "b", "b3");
  mem->Add(1, kTypeValue, "a", "a1");
  mem->Add(2, kTypeValue, "a", "a2");

  std::unique_ptr<Iterator> it(mem->NewIterator());
  std::vector<std::pair<std::string, uint64_t>> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(it->key(), &parsed));
    seen.emplace_back(parsed.user_key.ToString(), parsed.sequence);
  }
  // a@2 (newest first), a@1, b@3.
  ASSERT_EQ(3u, seen.size());
  EXPECT_EQ(std::make_pair(std::string("a"), uint64_t{2}), seen[0]);
  EXPECT_EQ(std::make_pair(std::string("a"), uint64_t{1}), seen[1]);
  EXPECT_EQ(std::make_pair(std::string("b"), uint64_t{3}), seen[2]);
  mem->Unref();
}

TEST(MemTableTest, MemoryUsageGrows) {
  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  size_t before = mem->ApproximateMemoryUsage();
  for (int i = 0; i < 100; i++) {
    mem->Add(i + 1, kTypeValue, "key" + std::to_string(i),
             std::string(100, 'v'));
  }
  EXPECT_GT(mem->ApproximateMemoryUsage(), before + 100 * 100);
  mem->Unref();
}

// ---------- WriteBatch ----------

TEST(WriteBatchTest, CountAndIterate) {
  WriteBatch batch;
  EXPECT_EQ(0, batch.Count());
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(3, batch.Count());

  struct Collector : public WriteBatch::Handler {
    std::string log;
    void Put(const Slice& key, const Slice& value) override {
      log += "Put(" + key.ToString() + "," + value.ToString() + ")";
    }
    void Delete(const Slice& key) override {
      log += "Delete(" + key.ToString() + ")";
    }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  EXPECT_EQ("Put(a,1)Delete(b)Put(c,3)", collector.log);
}

TEST(WriteBatchTest, Append) {
  WriteBatch a, b;
  a.Put("x", "1");
  b.Put("y", "2");
  b.Delete("z");
  a.Append(b);
  EXPECT_EQ(3, a.Count());
}

TEST(WriteBatchTest, SequenceRoundTrip) {
  WriteBatch batch;
  WriteBatchInternal::SetSequence(&batch, 12345);
  EXPECT_EQ(12345u, WriteBatchInternal::Sequence(&batch));
}

TEST(WriteBatchTest, InsertIntoMemTable) {
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Put("k2", "v2");
  batch.Delete("k1");
  WriteBatchInternal::SetSequence(&batch, 100);

  InternalKeyComparator icmp(BytewiseComparator::Instance());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  ASSERT_TRUE(WriteBatchInternal::InsertInto(&batch, mem).ok());

  std::string value;
  Status s;
  EXPECT_TRUE(mem->Get(LookupKey("k1", 200), &value, &s));
  EXPECT_TRUE(s.IsNotFound());  // Deleted at seq 102.
  s = Status::OK();
  EXPECT_TRUE(mem->Get(LookupKey("k2", 200), &value, &s));
  EXPECT_EQ("v2", value);
  mem->Unref();
}

TEST(WriteBatchTest, CorruptContentsDetected) {
  WriteBatch batch;
  batch.Put("k", "v");
  std::string contents = WriteBatchInternal::Contents(&batch).ToString();
  contents[13] = static_cast<char>(0x7f);  // Bogus tag.
  WriteBatch corrupt;
  WriteBatchInternal::SetContents(&corrupt, contents);
  struct Nop : public WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  } nop;
  EXPECT_FALSE(corrupt.Iterate(&nop).ok());
}

// ---------- FindFile / overlap checks (version_set helpers) ----------

class FindFileTest : public ::testing::Test {
 protected:
  ~FindFileTest() override {
    for (FileMetaData* f : files_) delete f;
  }

  void Add(const char* smallest, const char* largest,
           SequenceNumber smallest_seq = 100,
           SequenceNumber largest_seq = 100) {
    auto* f = new FileMetaData;
    f->number = files_.size() + 1;
    f->smallest = InternalKey(smallest, smallest_seq, kTypeValue);
    f->largest = InternalKey(largest, largest_seq, kTypeValue);
    files_.push_back(f);
  }

  int Find(const char* key) {
    InternalKey target(key, 100, kTypeValue);
    return FindFile(icmp_, files_, target.Encode());
  }

  bool Overlaps(const char* smallest, const char* largest) {
    Slice s(smallest != nullptr ? smallest : "");
    Slice l(largest != nullptr ? largest : "");
    return SomeFileOverlapsRange(icmp_, disjoint_, files_,
                                 (smallest != nullptr ? &s : nullptr),
                                 (largest != nullptr ? &l : nullptr));
  }

  InternalKeyComparator icmp_{BytewiseComparator::Instance()};
  bool disjoint_ = true;
  std::vector<FileMetaData*> files_;
};

TEST_F(FindFileTest, Empty) {
  EXPECT_EQ(0, Find("foo"));
  EXPECT_FALSE(Overlaps("a", "z"));
  EXPECT_FALSE(Overlaps(nullptr, nullptr));
}

TEST_F(FindFileTest, Single) {
  Add("p", "q");
  EXPECT_EQ(0, Find("a"));
  EXPECT_EQ(0, Find("p"));
  EXPECT_EQ(0, Find("q"));
  EXPECT_EQ(1, Find("r"));

  EXPECT_FALSE(Overlaps("a", "b"));
  EXPECT_FALSE(Overlaps("z1", "z2"));
  EXPECT_TRUE(Overlaps("a", "p"));
  EXPECT_TRUE(Overlaps("q", "z"));
  EXPECT_TRUE(Overlaps("p1", "p2"));
  EXPECT_TRUE(Overlaps(nullptr, "p"));
  EXPECT_TRUE(Overlaps("q", nullptr));
  EXPECT_TRUE(Overlaps(nullptr, nullptr));
  EXPECT_FALSE(Overlaps(nullptr, "a"));
  EXPECT_FALSE(Overlaps("z", nullptr));
}

TEST_F(FindFileTest, Multiple) {
  Add("150", "200");
  Add("200", "250");
  Add("300", "350");
  Add("400", "450");
  EXPECT_EQ(0, Find("100"));
  EXPECT_EQ(0, Find("200"));
  EXPECT_EQ(1, Find("201"));
  EXPECT_EQ(2, Find("251"));
  EXPECT_EQ(2, Find("350"));
  EXPECT_EQ(3, Find("351"));
  EXPECT_EQ(4, Find("451"));

  EXPECT_FALSE(Overlaps("251", "299"));
  EXPECT_TRUE(Overlaps("251", "300"));
  EXPECT_TRUE(Overlaps("100", "150"));
  EXPECT_TRUE(Overlaps("100", "500"));
}

TEST_F(FindFileTest, OverlappingL0Fallback) {
  // disjoint = false (level 0): linear scan semantics.
  disjoint_ = false;
  Add("150", "600");
  Add("400", "500");
  EXPECT_TRUE(Overlaps("100", "150"));
  EXPECT_TRUE(Overlaps("450", "700"));
  EXPECT_FALSE(Overlaps("601", "700"));
}

// ---------- VersionEdit ----------

TEST(VersionEditTest, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.SetComparatorName("rocksmash.BytewiseComparator");
  edit.SetLogNumber(9);
  edit.SetNextFile(100);
  edit.SetLastSequence(987654);
  edit.AddFile(2, 55, 12345, InternalKey("aaa", 1, kTypeValue),
               InternalKey("zzz", 2, kTypeValue));
  edit.RemoveFile(3, 27);
  edit.SetCompactPointer(1, InternalKey("mmm", 3, kTypeValue));

  std::string encoded;
  edit.EncodeTo(&encoded);

  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  std::string encoded2;
  decoded.EncodeTo(&encoded2);
  EXPECT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x7f\x01garbage")).ok());
}

}  // namespace
}  // namespace rocksmash
