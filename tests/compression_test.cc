// Tests for the LZ block codec (snappy wire format) and its integration
// with the table format.
#include "util/compression.h"

#include <gtest/gtest.h>

#include "env/env.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  lz::Compress(input, &compressed);
  EXPECT_LE(compressed.size(), lz::MaxCompressedLength(input.size()));

  uint32_t len;
  EXPECT_TRUE(lz::GetUncompressedLength(compressed, &len));
  EXPECT_EQ(input.size(), len);

  std::string out;
  EXPECT_TRUE(lz::Uncompress(compressed, &out));
  return out;
}

TEST(LzTest, Empty) { EXPECT_EQ("", RoundTrip("")); }

TEST(LzTest, TinyInputs) {
  for (const char* s : {"a", "ab", "abc", "abcd", "abcde", "abcdefg"}) {
    EXPECT_EQ(s, RoundTrip(s));
  }
}

TEST(LzTest, RepetitiveCompressesWell) {
  std::string input;
  for (int i = 0; i < 1000; i++) {
    input += "the quick brown fox jumps over the lazy dog. ";
  }
  std::string compressed;
  lz::Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::string out;
  ASSERT_TRUE(lz::Uncompress(compressed, &out));
  EXPECT_EQ(input, out);
}

TEST(LzTest, RunOfOneByte) {
  // Overlapping copies (offset < length) — the classic RLE-via-LZ case.
  std::string input(100000, 'z');
  std::string compressed;
  lz::Compress(input, &compressed);
  // Copies are chunked at 64 bytes (3 bytes each): ~21x, as in snappy.
  EXPECT_LT(compressed.size(), input.size() / 20);
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(LzTest, IncompressibleSurvives) {
  Random64 rng(1);
  std::string input;
  for (int i = 0; i < 65536; i++) {
    input.push_back(static_cast<char>(rng.Next()));
  }
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(LzTest, AllByteValues) {
  std::string input;
  for (int round = 0; round < 64; round++) {
    for (int b = 0; b < 256; b++) {
      input.push_back(static_cast<char>(b));
    }
  }
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(LzTest, UncompressRejectsTruncation) {
  std::string input(5000, 'q');
  std::string compressed;
  lz::Compress(input, &compressed);
  for (size_t cut : {size_t{0}, compressed.size() / 2, compressed.size() - 1}) {
    std::string out;
    EXPECT_FALSE(lz::Uncompress(Slice(compressed.data(), cut), &out)) << cut;
  }
}

TEST(LzTest, UncompressRejectsBadOffsets) {
  // Handcraft: length 4, then a copy with offset beyond the output so far.
  std::string bad;
  bad.push_back(4);                     // varint32 uncompressed length = 4
  bad.push_back((3 << 2) | 0);          // literal of length 4...
  bad.append("abcd");
  std::string out;
  EXPECT_TRUE(lz::Uncompress(bad, &out));  // Sanity: well-formed version.

  bad.clear();
  bad.push_back(8);
  bad.push_back((0 << 2) | 0);  // Literal length 1
  bad.push_back('x');
  bad.push_back(static_cast<char>(((4 - 1) << 2) | 2));  // Copy len 4
  bad.push_back(100);  // offset 100 > bytes produced (1)
  bad.push_back(0);
  EXPECT_FALSE(lz::Uncompress(bad, &out));
}

// Property sweep: random structured inputs of varied sizes round-trip.
class LzProperty : public ::testing::TestWithParam<int> {};

TEST_P(LzProperty, RandomStructuredRoundTrip) {
  Random64 rng(GetParam());
  for (int iter = 0; iter < 30; iter++) {
    std::string input;
    const int pieces = 1 + static_cast<int>(rng.Uniform(20));
    for (int p = 0; p < pieces; p++) {
      switch (rng.Uniform(3)) {
        case 0: {  // Random bytes.
          size_t n = rng.Skewed(12);
          for (size_t i = 0; i < n; i++) {
            input.push_back(static_cast<char>(rng.Next()));
          }
          break;
        }
        case 1: {  // Run.
          input.append(rng.Skewed(12), static_cast<char>('a' + rng.Uniform(26)));
          break;
        }
        default: {  // Self-copy of an earlier window.
          if (!input.empty()) {
            size_t start = rng.Uniform(input.size());
            size_t len = std::min<size_t>(rng.Skewed(10),
                                          input.size() - start);
            input.append(input.substr(start, len));
          }
          break;
        }
      }
    }
    std::string compressed, out;
    lz::Compress(input, &compressed);
    ASSERT_TRUE(lz::Uncompress(compressed, &out));
    ASSERT_EQ(input, out) << "seed " << GetParam() << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzProperty, ::testing::Range(1, 9));

// Table integration: compressed tables round-trip and are smaller.
TEST(TableCompressionTest, CompressedTableRoundTrip) {
  auto env = NewMemEnv();

  auto build = [&](bool compress, const std::string& name) -> uint64_t {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env->NewWritableFile(name, &file).ok());
    TableOptions topt;
    topt.compression = compress ? kLzCompression : kNoCompression;
    TableBuilder builder(topt, file.get());
    for (int i = 0; i < 5000; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key%08d", i);
      builder.Add(key, "value-" + std::to_string(i % 100) +
                           std::string(80, 'p'));
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Close().ok());
    return builder.FileSize();
  };

  const uint64_t compressed_size = build(true, "/compressed");
  const uint64_t plain_size = build(false, "/plain");
  EXPECT_LT(compressed_size, plain_size / 2);

  // Read back through the normal reader (auto-detects per block).
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("/compressed", &rfile).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(TableOptions(),
                          std::make_unique<FileBlockSource>(rfile.get()),
                          compressed_size, nullptr, 1, &table)
                  .ok());
  std::unique_ptr<Iterator> it(table->NewIterator());
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), n++) {
    ASSERT_TRUE(it->value().starts_with("value-"));
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(5000, n);
}

TEST(TableCompressionTest, IncompressibleBlocksStayRaw) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/t", &file).ok());
  TableOptions topt;  // compression on by default
  TableBuilder builder(topt, file.get());
  Random64 rng(3);
  for (int i = 0; i < 1000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    std::string value(100, '\0');
    for (char& c : value) c = static_cast<char>(rng.Next());
    builder.Add(key, value);
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE(file->Close().ok());
  const uint64_t size = builder.FileSize();

  // Reads still work (blocks were kept uncompressed under the 12.5% rule).
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("/t", &rfile).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(TableOptions(),
                          std::make_unique<FileBlockSource>(rfile.get()), size,
                          nullptr, 1, &table)
                  .ok());
  std::unique_ptr<Iterator> it(table->NewIterator());
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  EXPECT_EQ(1000, n);
}

}  // namespace
}  // namespace rocksmash
