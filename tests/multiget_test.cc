// Tests for the batched read path: DB::MultiGet must agree with a loop of
// Get under every mix of memtable/local/cloud residency, deletes, snapshots,
// and duplicate keys — while coalescing duplicate blocks and fanning cloud
// misses out in parallel.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/kvstore.h"
#include "cloud/object_store.h"
#include "mash/rocksmash_db.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/rocksmash_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

std::string Value(uint64_t i, int version) {
  std::string v = "value-" + std::to_string(i) + "-v" + std::to_string(version);
  v.resize(64, 'p');
  return v;
}

class MultiGetTest : public ::testing::Test {
 protected:
  void Open(int cloud_level_start, uint64_t readahead_bytes = 16 * 1024) {
    dir_ = TestDir("multiget");
    CloudLatencyModel model;
    model.jitter_micros = 0;
    cloud_ = NewMemObjectStore(&clock_, model);
    stats_ = CreateDBStatistics();
    RocksMashOptions o;
    o.local_dir = dir_ + "/db";
    o.cloud = cloud_.get();
    o.cloud_level_start = cloud_level_start;
    o.write_buffer_size = 32 << 10;
    o.max_file_size = 32 << 10;
    o.max_bytes_for_level_base = 64 << 10;
    o.block_size = 1024;
    o.block_cache_bytes = 16 << 10;
    o.persistent_cache_bytes = 16 << 10;
    o.cloud_readahead_bytes = readahead_bytes;
    o.statistics = stats_.get();
    ASSERT_TRUE(RocksMashDB::Open(o, &db_).ok());
  }

  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  // MultiGet over `keys` must byte-for-byte match a loop of Get with the
  // same ReadOptions.
  void CheckAgainstLoop(const ReadOptions& ro,
                        const std::vector<std::string>& key_storage) {
    std::vector<Slice> keys(key_storage.begin(), key_storage.end());
    std::vector<std::string> values;
    std::vector<Status> statuses;
    db_->MultiGet(ro, keys, &values, &statuses);
    ASSERT_EQ(keys.size(), values.size());
    ASSERT_EQ(keys.size(), statuses.size());
    for (size_t i = 0; i < keys.size(); i++) {
      std::string expected;
      Status s = db_->Get(ro, keys[i], &expected);
      EXPECT_EQ(s.ok(), statuses[i].ok()) << key_storage[i];
      EXPECT_EQ(s.IsNotFound(), statuses[i].IsNotFound()) << key_storage[i];
      if (s.ok()) {
        EXPECT_EQ(expected, values[i]) << key_storage[i];
      }
    }
  }

  uint64_t Ticker(uint32_t t) const { return stats_->GetTickerCount(t); }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  std::shared_ptr<Statistics> stats_;
  std::unique_ptr<RocksMashDB> db_;
};

TEST_F(MultiGetTest, EmptyBatch) {
  Open(1);
  std::vector<Slice> keys;
  std::vector<std::string> values = {"stale"};
  std::vector<Status> statuses = {Status::Corruption("stale")};
  // why unchecked: the seeded status is a sentinel that MultiGet must wipe,
  // not an error anyone inspects.
  statuses[0].PermitUncheckedError();
  db_->MultiGet(ReadOptions(), keys, &values, &statuses);
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
}

// Randomized sweep with keys resident in the memtable, local SSTs, and
// cloud SSTs at once, plus overwrites, deletes, duplicates within a batch,
// and misses.
TEST_F(MultiGetTest, MatchesLoopedGetAcrossTiers) {
  Open(1);
  WriteOptions wo;
  for (uint64_t i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 0)).ok());
  }
  for (uint64_t i = 0; i < 400; i += 5) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 1)).ok());
  }
  for (uint64_t i = 0; i < 400; i += 7) {
    ASSERT_TRUE(db_->Delete(wo, Key(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();
  // Fresh memtable entries on top of the flushed state, including deletes
  // that shadow SST-resident versions.
  for (uint64_t i = 400; i < 500; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 2)).ok());
  }
  for (uint64_t i = 1; i < 400; i += 31) {
    ASSERT_TRUE(db_->Delete(wo, Key(i)).ok());
  }

  Random64 rng(20260807);
  ReadOptions ro;
  for (int round = 0; round < 40; round++) {
    std::vector<std::string> batch;
    for (int j = 0; j < 24; j++) {
      // [0, 600): ~1/6 of draws miss entirely.
      batch.push_back(Key(rng.Uniform(600)));
    }
    // Force duplicates within the batch.
    batch.push_back(batch[0]);
    batch.push_back(batch[7]);
    CheckAgainstLoop(ro, batch);
  }
  EXPECT_GT(Ticker(MULTIGET_BATCHES), 0u);
  EXPECT_GT(Ticker(MULTIGET_KEYS), Ticker(MULTIGET_BATCHES));
}

TEST_F(MultiGetTest, RespectsSnapshot) {
  Open(0);
  WriteOptions wo;
  for (uint64_t i = 0; i < 80; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 0)).ok());
  }
  const Snapshot* snap = db_->GetSnapshot();
  for (uint64_t i = 0; i < 80; i += 2) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 9)).ok());
  }
  for (uint64_t i = 1; i < 80; i += 2) {
    ASSERT_TRUE(db_->Delete(wo, Key(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();

  std::vector<std::string> key_storage;
  for (uint64_t i = 0; i < 80; i++) key_storage.push_back(Key(i));
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;

  // At the snapshot every key exists with its version-0 value, regardless
  // of the overwrites/deletes that landed (and flushed) afterwards.
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  db_->MultiGet(at_snap, keys, &values, &statuses);
  for (uint64_t i = 0; i < 80; i++) {
    ASSERT_TRUE(statuses[i].ok()) << Key(i);
    EXPECT_EQ(Value(i, 0), values[i]);
  }
  CheckAgainstLoop(at_snap, key_storage);

  // Without the snapshot, the current state shows through.
  db_->MultiGet(ReadOptions(), keys, &values, &statuses);
  for (uint64_t i = 0; i < 80; i++) {
    if (i % 2 == 0) {
      ASSERT_TRUE(statuses[i].ok()) << Key(i);
      EXPECT_EQ(Value(i, 9), values[i]);
    } else {
      EXPECT_TRUE(statuses[i].IsNotFound()) << Key(i);
    }
  }
  db_->ReleaseSnapshot(snap);
}

// Duplicate keys (and neighbors in one block) must resolve with a single
// block fetch: the dedup shows up in multiget.coalesced.blocks and every
// duplicate still gets its own correct value.
TEST_F(MultiGetTest, CoalescesDuplicateBlocks) {
  Open(0);
  WriteOptions wo;
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 0)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();
  db_->storage()->WaitForPendingUploads();

  std::vector<std::string> key_storage;
  for (int rep = 0; rep < 8; rep++) key_storage.push_back(Key(100));
  for (uint64_t i = 101; i < 105; i++) key_storage.push_back(Key(i));
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;

  const uint64_t coalesced_before = Ticker(MULTIGET_COALESCED_BLOCKS);
  db_->MultiGet(ReadOptions(), keys, &values, &statuses);
  EXPECT_GT(Ticker(MULTIGET_COALESCED_BLOCKS), coalesced_before);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
  }
  // All eight duplicates of Key(100) returned the same bytes.
  for (int rep = 1; rep < 8; rep++) EXPECT_EQ(values[0], values[rep]);
  EXPECT_EQ(Value(100, 0), values[0]);
}

// A cold batch against a cloud-resident table with a tiny readahead window
// must fan its block fetches out on the shared pool.
TEST_F(MultiGetTest, ParallelCloudFetches) {
  Open(0, /*readahead_bytes=*/1024);
  WriteOptions wo;
  Random64 rng(7);
  for (uint64_t i = 0; i < 600; i++) {
    std::string value(128, '\0');
    for (char& c : value) c = static_cast<char>('a' + (rng.Next() % 26));
    ASSERT_TRUE(db_->Put(wo, Key(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();
  db_->storage()->WaitForPendingUploads();

  std::vector<std::string> key_storage;
  for (uint64_t i = 0; i < 600; i += 19) key_storage.push_back(Key(i));
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;

  ReadOptions ro;
  ro.max_cloud_fan_out = 8;
  const uint64_t parallel_before = Ticker(MULTIGET_CLOUD_PARALLEL_GETS);
  db_->MultiGet(ro, keys, &values, &statuses);
  EXPECT_GT(Ticker(MULTIGET_CLOUD_PARALLEL_GETS), parallel_before);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
    EXPECT_EQ(128u, values[i].size());
  }
}

// The readahead_hint widens the coalescing window: with the whole file in
// one window, a spread batch costs a single range GET.
TEST_F(MultiGetTest, ReadaheadHintCoalescesRangeGets) {
  Open(0, /*readahead_bytes=*/1024);
  WriteOptions wo;
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), Value(i, 0)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->WaitForCompaction();
  db_->storage()->WaitForPendingUploads();

  std::vector<std::string> key_storage;
  for (uint64_t i = 0; i < 200; i += 11) key_storage.push_back(Key(i));
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;

  ReadOptions ro;
  ro.readahead_hint = 4 << 20;  // Whole file fits one window.
  const uint64_t gets_before = cloud_->Counters().gets;
  db_->MultiGet(ro, keys, &values, &statuses);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
  }
  // One data SST, one coalesced range GET for all of its requested blocks.
  EXPECT_LE(cloud_->Counters().gets - gets_before, 2u);
}

// KVStore forwards the batched path unchanged for every scheme (the base
// DB::MultiGet loop covers schemes without a batched engine underneath).
TEST(MultiGetKVStoreTest, ForwardsAcrossSchemes) {
  for (SchemeKind kind : {SchemeKind::kLocalOnly, SchemeKind::kRocksMash}) {
    SimClock clock;
    CloudLatencyModel model;
    model.jitter_micros = 0;
    auto cloud = NewMemObjectStore(&clock, model);
    std::string dir = TestDir(std::string("multiget_kv_") + SchemeName(kind));
    SchemeOptions o;
    o.kind = kind;
    o.local_dir = dir + "/db";
    o.cloud = kind == SchemeKind::kLocalOnly ? nullptr : cloud.get();
    o.cloud_level_start = 0;
    o.write_buffer_size = 32 << 10;
    o.max_file_size = 32 << 10;
    std::unique_ptr<KVStore> store;
    ASSERT_TRUE(OpenKVStore(o, &store).ok());

    WriteOptions wo;
    for (uint64_t i = 0; i < 100; i++) {
      ASSERT_TRUE(store->Put(wo, Key(i), Value(i, 0)).ok());
    }
    ASSERT_TRUE(store->FlushMemTable().ok());
    store->WaitForCompaction();

    std::vector<std::string> key_storage;
    for (uint64_t i = 0; i < 120; i += 3) key_storage.push_back(Key(i));
    std::vector<Slice> keys(key_storage.begin(), key_storage.end());
    std::vector<std::string> values;
    std::vector<Status> statuses;
    store->MultiGet(ReadOptions(), keys, &values, &statuses);
    ASSERT_EQ(keys.size(), statuses.size());
    for (size_t i = 0; i < key_storage.size(); i++) {
      std::string expected;
      Status s = store->Get(ReadOptions(), keys[i], &expected);
      EXPECT_EQ(s.ok(), statuses[i].ok()) << key_storage[i];
      if (s.ok()) {
        EXPECT_EQ(expected, values[i]) << key_storage[i];
      }
    }
    store.reset();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace rocksmash
