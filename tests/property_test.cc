// Property-based tests: randomized operation sequences checked against an
// in-memory model, swept over engine configurations with TEST_P.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>

#include "baselines/kvstore.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/random.h"

namespace rocksmash {
namespace {

struct EngineConfig {
  SchemeKind kind;
  size_t write_buffer;
  size_t block_size;
  int filter_bits;
  int wal_segments;
  uint64_t seed;

  std::string Name() const {
    return std::string(SchemeName(kind)) + "_wb" +
           std::to_string(write_buffer / 1024) + "k_bs" +
           std::to_string(block_size) + "_fb" + std::to_string(filter_bits) +
           "_wal" + std::to_string(wal_segments) + "_s" +
           std::to_string(seed);
  }
};

class ModelCheck : public ::testing::TestWithParam<EngineConfig> {
 protected:
  void SetUp() override {
    const EngineConfig& cfg = GetParam();
    dir_ = ::testing::TempDir() + "/rocksmash_prop_" + cfg.Name();
    std::filesystem::remove_all(dir_);

    CloudLatencyModel model;
    model.jitter_micros = 0;
    model.get_first_byte_micros = 1;
    model.put_first_byte_micros = 1;
    model.head_micros = 1;
    model.list_micros = 1;
    model.delete_micros = 1;
    cloud_ = NewMemObjectStore(&clock_, model);

    options_.kind = cfg.kind;
    options_.local_dir = dir_;
    options_.cloud =
        cfg.kind == SchemeKind::kLocalOnly ? nullptr : cloud_.get();
    options_.write_buffer_size = cfg.write_buffer;
    options_.block_size = cfg.block_size;
    options_.filter_bits_per_key = cfg.filter_bits;
    options_.wal_segments = cfg.wal_segments;
    options_.max_file_size = 32 * 1024;
    options_.cloud_level_start = 1;
    options_.local_cache_bytes = 256 * 1024;
    // Every sweep config runs with statistics enabled so the whole property
    // suite doubles as coverage for the instrumented paths.
    statistics_ = CreateDBStatistics();
    options_.statistics = statistics_.get();
    ASSERT_TRUE(OpenKVStore(options_, &store_).ok());
  }

  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  void CheckAgainstModel(const std::map<std::string, std::string>& model,
                         int stride = 1) {
    std::string value;
    int i = 0;
    for (const auto& [k, v] : model) {
      if (i++ % stride != 0) continue;
      Status s = store_->Get(ReadOptions(), k, &value);
      ASSERT_TRUE(s.ok()) << "key " << k << ": " << s.ToString();
      ASSERT_EQ(v, value) << "key " << k;
    }
  }

  SimClock clock_;
  std::string dir_;
  std::unique_ptr<ObjectStore> cloud_;
  SchemeOptions options_;
  std::shared_ptr<Statistics> statistics_;
  std::unique_ptr<KVStore> store_;
};

// Invariant: after any random sequence of Put/Delete/Flush, the store
// matches a std::map executing the same sequence.
TEST_P(ModelCheck, RandomOpsMatchModel) {
  const EngineConfig& cfg = GetParam();
  Random64 rng(cfg.seed);
  std::map<std::string, std::string> model;

  for (int op = 0; op < 4000; op++) {
    const uint64_t key_index = rng.Uniform(500);
    std::string key = "key" + std::to_string(key_index);
    const double p = rng.NextDouble();
    if (p < 0.70) {
      std::string value = "v" + std::to_string(op) + "-" +
                          std::string(rng.Uniform(100), 'x');
      ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else if (p < 0.90) {
      ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else if (p < 0.95) {
      ASSERT_TRUE(store_->FlushMemTable().ok());
    } else {
      // Batched mutation.
      WriteBatch batch;
      for (int j = 0; j < 5; j++) {
        std::string bkey = "key" + std::to_string(rng.Uniform(500));
        std::string bvalue = "b" + std::to_string(op) + "-" + std::to_string(j);
        batch.Put(bkey, bvalue);
        model[bkey] = bvalue;
      }
      ASSERT_TRUE(store_->Write(WriteOptions(), &batch).ok());
    }
  }
  store_->WaitForCompaction();
  CheckAgainstModel(model);

  // Deleted keys stay deleted.
  std::string value;
  for (int i = 0; i < 500; i++) {
    std::string key = "key" + std::to_string(i);
    if (model.count(key) == 0) {
      EXPECT_TRUE(store_->Get(ReadOptions(), key, &value).IsNotFound()) << key;
    }
  }
}

// Invariant: a full forward scan yields exactly the model's keys in order.
TEST_P(ModelCheck, ScanMatchesModel) {
  const EngineConfig& cfg = GetParam();
  Random64 rng(cfg.seed + 1);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 2000; op++) {
    std::string key = "key" + std::to_string(rng.Uniform(400));
    if (rng.NextDouble() < 0.8) {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    }
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  store_->WaitForCompaction();

  std::unique_ptr<Iterator> it(store_->NewIterator(ReadOptions()));
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(expect->first, it->key().ToString());
    EXPECT_EQ(expect->second, it->value().ToString());
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(expect, model.end());
}

// Invariant: a full backward scan yields exactly the model's keys in
// reverse order, and random Seek+Prev walks agree with the model.
TEST_P(ModelCheck, BackwardScanMatchesModel) {
  const EngineConfig& cfg = GetParam();
  Random64 rng(cfg.seed + 3);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 1500; op++) {
    std::string key = "key" + std::to_string(rng.Uniform(300));
    if (rng.NextDouble() < 0.8) {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    }
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  store_->WaitForCompaction();

  std::unique_ptr<Iterator> it(store_->NewIterator(ReadOptions()));
  auto expect = model.rbegin();
  for (it->SeekToLast(); it->Valid(); it->Prev(), ++expect) {
    ASSERT_NE(expect, model.rend());
    EXPECT_EQ(expect->first, it->key().ToString());
    EXPECT_EQ(expect->second, it->value().ToString());
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(expect, model.rend());

  // Random Seek + short Prev walks.
  for (int probe = 0; probe < 50 && !model.empty(); probe++) {
    std::string target = "key" + std::to_string(rng.Uniform(300));
    it->Seek(target);
    auto mit = model.lower_bound(target);
    if (mit == model.end()) {
      // Nothing at/after target; Prev from invalid is not defined — skip.
      EXPECT_FALSE(it->Valid());
      continue;
    }
    ASSERT_TRUE(it->Valid());
    ASSERT_EQ(mit->first, it->key().ToString());
    it->Prev();
    if (mit == model.begin()) {
      EXPECT_FALSE(it->Valid());
    } else {
      auto prev_it = std::prev(mit);
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(prev_it->first, it->key().ToString());
      EXPECT_EQ(prev_it->second, it->value().ToString());
    }
  }
}

// Invariant: restart (recovery) preserves exactly the model.
TEST_P(ModelCheck, RestartPreservesModel) {
  const EngineConfig& cfg = GetParam();
  Random64 rng(cfg.seed + 2);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 1500; op++) {
    std::string key = "key" + std::to_string(rng.Uniform(300));
    if (rng.NextDouble() < 0.85) {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    }
  }
  // Close without flushing: the tail must be recovered from the WAL.
  store_.reset();
  ASSERT_TRUE(OpenKVStore(options_, &store_).ok());
  CheckAgainstModel(model);
}

// Invariant: tickers count exactly what the model says happened — every
// Put/Delete/batch entry shows up in keys.written, every Get in keys.read —
// and all tickers are monotone non-decreasing across snapshot rounds.
TEST_P(ModelCheck, TickersMatchOperationCounts) {
  const EngineConfig& cfg = GetParam();
  Random64 rng(cfg.seed + 5);
  std::map<std::string, std::string> model;

  uint64_t expected_written = 0;
  std::vector<uint64_t> prev(TICKER_ENUM_MAX, 0);
  for (int round = 0; round < 4; round++) {
    for (int op = 0; op < 400; op++) {
      std::string key = "key" + std::to_string(rng.Uniform(200));
      if (rng.NextDouble() < 0.8) {
        std::string value = "v" + std::to_string(round * 1000 + op);
        ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
        model[key] = value;
      } else {
        ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
        model.erase(key);
      }
      expected_written++;
    }
    // Batched mutations count one per entry, not one per batch.
    WriteBatch batch;
    for (int j = 0; j < 7; j++) {
      std::string bkey = "key" + std::to_string(rng.Uniform(200));
      std::string bvalue = "b" + std::to_string(round) + "-" +
                           std::to_string(j);
      batch.Put(bkey, bvalue);
      model[bkey] = bvalue;
    }
    ASSERT_TRUE(store_->Write(WriteOptions(), &batch).ok());
    expected_written += 7;

    // Monotonicity: no ticker ever decreases.
    for (uint32_t t = 0; t < TICKER_ENUM_MAX; t++) {
      const uint64_t now = statistics_->GetTickerCount(t);
      EXPECT_GE(now, prev[t]) << TickerName(t) << " went backwards";
      prev[t] = now;
    }
  }
  EXPECT_EQ(expected_written, statistics_->GetTickerCount(NUM_KEYS_WRITTEN));

  const uint64_t reads_before = statistics_->GetTickerCount(NUM_KEYS_READ);
  CheckAgainstModel(model);
  EXPECT_EQ(reads_before + model.size(),
            statistics_->GetTickerCount(NUM_KEYS_READ));

  ASSERT_TRUE(store_->FlushMemTable().ok());
  store_->WaitForCompaction();
  EXPECT_GT(statistics_->GetTickerCount(FLUSH_COUNT), 0u);
  EXPECT_GT(statistics_->GetTickerCount(FLUSH_LANE_BYTES_WRITTEN), 0u);

  // Property surface: tickers and the Prometheus dump are reachable
  // through KVStore::GetProperty.
  std::string v;
  ASSERT_TRUE(store_->GetProperty("rocksmash.ticker.keys.written", &v));
  EXPECT_EQ(std::to_string(expected_written), v);
  ASSERT_TRUE(store_->GetProperty("rocksmash.prometheus", &v));
  EXPECT_FALSE(v.empty());
  EXPECT_NE(v.find("# TYPE"), std::string::npos);
}

std::vector<EngineConfig> MakeConfigs() {
  std::vector<EngineConfig> configs;
  // Sweep schemes × memtable size × block size × filter × WAL striping.
  for (SchemeKind kind :
       {SchemeKind::kLocalOnly, SchemeKind::kCloudOnly,
        SchemeKind::kCloudSstCache, SchemeKind::kRocksMash}) {
    configs.push_back({kind, 16 * 1024, 1024, 10, 4, 1});
    configs.push_back({kind, 64 * 1024, 4096, 0, 1, 2});
  }
  // Extra RocksMash-specific shapes: tiny blocks, heavy striping.
  configs.push_back({SchemeKind::kRocksMash, 8 * 1024, 512, 10, 8, 3});
  configs.push_back({SchemeKind::kRocksMash, 32 * 1024, 2048, 4, 2, 4});
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelCheck,
                         ::testing::ValuesIn(MakeConfigs()),
                         [](const ::testing::TestParamInfo<EngineConfig>& i) {
                           return i.param.Name();
                         });

}  // namespace
}  // namespace rocksmash
