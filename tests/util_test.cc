// Unit tests for the util substrate: coding, crc32c, hash, cache, arena,
// histogram, thread pool, slice, status.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/cache.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rocksmash {
namespace {

// ---------- Slice ----------

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
  s.remove_suffix(1);
  EXPECT_EQ("ll", s.ToString());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("a").compare(Slice("a")), 0);
  EXPECT_LT(Slice("a").compare(Slice("aa")), 0);
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abc").starts_with(Slice("b")));
}

// ---------- Status ----------

TEST(StatusTest, Codes) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ("OK", Status::OK().ToString());
  EXPECT_EQ("NotFound: msg: detail",
            Status::NotFound("msg", "detail").ToString());
}

// ---------- Coding ----------

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xffffffffu, 0x12345678u}) {
    s.clear();
    PutFixed32(&s, v);
    EXPECT_EQ(4u, s.size());
    EXPECT_EQ(v, DecodeFixed32(s.data()));
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, ~uint64_t{0},
                     uint64_t{0x123456789abcdef0}}) {
    s.clear();
    PutFixed64(&s, v);
    EXPECT_EQ(8u, s.size());
    EXPECT_EQ(v, DecodeFixed64(s.data()));
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  for (uint32_t i = 0; i < 32; i++) {
    for (uint32_t delta : {0u, 1u}) {
      uint32_t v = (1u << i) - delta;
      s.clear();
      PutVarint32(&s, v);
      Slice input(s);
      uint32_t decoded;
      ASSERT_TRUE(GetVarint32(&input, &decoded));
      EXPECT_EQ(v, decoded);
      EXPECT_TRUE(input.empty());
    }
  }
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string s;
  for (uint32_t i = 0; i < 64; i++) {
    uint64_t v = (uint64_t{1} << i) - 1;
    s.clear();
    PutVarint64(&s, v);
    Slice input(s);
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    EXPECT_EQ(v, decoded);
  }
}

TEST(CodingTest, VarintLengths) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xffffffffu));
  EXPECT_EQ(10, VarintLength(~uint64_t{0}));
}

TEST(CodingTest, Varint32Truncation) {
  std::string s;
  PutVarint32(&s, 1u << 30);
  for (size_t len = 0; len < s.size(); len++) {
    Slice input(s.data(), len);
    uint32_t v;
    EXPECT_FALSE(GetVarint32(&input, &v));
  }
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, "foo");
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, std::string(300, 'x'));
  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(300, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

// ---------- CRC32C ----------

TEST(Crc32cTest, StandardVectors) {
  // From the CRC32C specification (RFC 3720 appendix).
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aaU, crc32c::Value(buf, sizeof(buf)));
  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43U, crc32c::Value(buf, sizeof(buf)));
  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(i);
  EXPECT_EQ(0x46dd794eU, crc32c::Value(buf, sizeof(buf)));
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello crc32c world, this is a longer buffer";
  for (size_t split = 0; split <= data.size(); split++) {
    uint32_t partial = crc32c::Value(data.data(), split);
    uint32_t extended =
        crc32c::Extend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32c::Value(data.data(), data.size()), extended);
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

// ---------- Hash ----------

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Hash32("abc", 3, 1), Hash32("abc", 3, 1));
  EXPECT_NE(Hash32("abc", 3, 1), Hash32("abc", 3, 2));
  EXPECT_EQ(Hash64("abc", 3, 1), Hash64("abc", 3, 1));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abd", 3, 1));
}

TEST(HashTest, SpreadsBits) {
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 1000; i++) {
    values.insert(FnvHash64(i));
  }
  EXPECT_EQ(1000u, values.size());
}

// ---------- Random ----------

TEST(RandomTest, UniformInRange) {
  Random64 rng(1);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Uniform(10), 10u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SameSeedSameSequence) {
  Random64 a(42), b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

// ---------- Arena ----------

TEST(ArenaTest, ManyAllocations) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> allocated;
  Random64 rng(3);
  size_t total = 0;
  for (int i = 0; i < 2000; i++) {
    size_t size = 1 + rng.Skewed(12);
    char* p = arena.Allocate(size);
    memset(p, i % 256, size);
    allocated.emplace_back(p, size);
    total += size;
    EXPECT_GE(arena.MemoryUsage(), total);
  }
  // Verify no allocation was clobbered.
  for (size_t i = 0; i < allocated.size(); i++) {
    auto [p, size] = allocated[i];
    for (size_t b = 0; b < size; b++) {
      EXPECT_EQ(static_cast<char>(i % 256), p[b]);
    }
  }
}

TEST(ArenaTest, AlignedAllocations) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    char* p = arena.AllocateAligned(3);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) %
                      alignof(std::max_align_t));
  }
}

// ---------- LRU cache ----------

void NoopDeleter(const Slice&, void*) {}

TEST(CacheTest, HitAndMiss) {
  auto cache = NewLRUCache(1024, 0);
  EXPECT_EQ(nullptr, cache->Lookup("k"));
  auto* h =
      cache->Insert("k", reinterpret_cast<void*>(1), 1, &NoopDeleter);
  cache->Release(h);
  auto* h2 = cache->Lookup("k");
  ASSERT_NE(nullptr, h2);
  EXPECT_EQ(reinterpret_cast<void*>(1), cache->Value(h2));
  cache->Release(h2);
}

TEST(CacheTest, Erase) {
  auto cache = NewLRUCache(1024, 0);
  cache->Release(
      cache->Insert("k", reinterpret_cast<void*>(1), 1, &NoopDeleter));
  cache->Erase("k");
  EXPECT_EQ(nullptr, cache->Lookup("k"));
}

TEST(CacheTest, EvictsLRU) {
  auto cache = NewLRUCache(10, 0);
  for (int i = 0; i < 20; i++) {
    std::string key = "k" + std::to_string(i);
    cache->Release(
        cache->Insert(key, reinterpret_cast<void*>(1), 1, &NoopDeleter));
  }
  // Early keys must have been evicted; recent ones retained.
  EXPECT_EQ(nullptr, cache->Lookup("k0"));
  auto* h = cache->Lookup("k19");
  ASSERT_NE(nullptr, h);
  cache->Release(h);
  EXPECT_LE(cache->TotalCharge(), 10u);
}

TEST(CacheTest, PinnedEntriesSurviveEviction) {
  auto cache = NewLRUCache(2, 0);
  auto* pinned =
      cache->Insert("pin", reinterpret_cast<void*>(7), 1, &NoopDeleter);
  for (int i = 0; i < 10; i++) {
    cache->Release(cache->Insert("k" + std::to_string(i),
                                 reinterpret_cast<void*>(1), 1, &NoopDeleter));
  }
  EXPECT_EQ(reinterpret_cast<void*>(7), cache->Value(pinned));
  cache->Release(pinned);
}

TEST(CacheTest, DeleterRunsOnEviction) {
  auto cache = NewLRUCache(1, 0);
  static int deleted;
  deleted = 0;
  auto deleter = [](const Slice&, void*) { deleted++; };
  cache->Release(cache->Insert("a", nullptr, 1, deleter));
  cache->Release(cache->Insert("b", nullptr, 1, deleter));  // Evicts "a"
  EXPECT_EQ(1, deleted);
}

TEST(CacheTest, StatsCount) {
  auto cache = NewLRUCache(1024, 0);
  cache->Release(cache->Insert("k", nullptr, 1, &NoopDeleter));
  auto* h = cache->Lookup("k");
  cache->Release(h);
  cache->Lookup("missing");
  auto stats = cache->GetStats();
  EXPECT_EQ(1u, stats.hits);
  EXPECT_EQ(1u, stats.misses);
  EXPECT_EQ(1u, stats.inserts);
}

TEST(CacheTest, NewIdsAreUnique) {
  auto cache = NewLRUCache(1024);
  EXPECT_NE(cache->NewId(), cache->NewId());
}

// ---------- Histogram ----------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  EXPECT_EQ(100u, h.Count());
  EXPECT_DOUBLE_EQ(50.5, h.Average());
  EXPECT_EQ(1.0, h.Min());
  EXPECT_EQ(100.0, h.Max());
  EXPECT_NEAR(50, h.Median(), 5);
  EXPECT_NEAR(99, h.Percentile(99), 5);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Add(1);
  b.Add(100);
  a.Merge(b);
  EXPECT_EQ(2u, a.Count());
  EXPECT_EQ(1.0, a.Min());
  EXPECT_EQ(100.0, a.Max());
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(100, count.load());
}

TEST(ThreadPoolTest, ZeroThreadsRunsCallerInline) {
  ThreadPool pool(0);
  EXPECT_EQ(0u, pool.NumThreads());
  std::thread::id ran_on;
  EXPECT_TRUE(pool.Schedule([&ran_on] { ran_on = std::this_thread::get_id(); }));
  // Caller-runs: the task executed inline before Schedule returned.
  EXPECT_EQ(std::this_thread::get_id(), ran_on);
  pool.WaitIdle();  // Must not hang with no workers.
  EXPECT_EQ(0u, pool.PendingTasks());
}

TEST(ThreadPoolTest, DoubleShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; i++) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(8, count.load());  // Shutdown drains queued work first.
  pool.Shutdown();             // Second call must be a no-op, not a crash.
  pool.Shutdown();
}

TEST(ThreadPoolTest, ConcurrentShutdownCallsAllReturn) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; i++) {
    pool.Schedule([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
  }
  std::vector<std::thread> closers;
  closers.reserve(4);
  for (int i = 0; i < 4; i++) {
    closers.emplace_back([&pool] { pool.Shutdown(); });
  }
  for (auto& t : closers) {
    t.join();  // Every caller must see the barrier complete.
  }
}

TEST(ThreadPoolTest, ScheduleDuringShutdownIsDropped) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.Schedule([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ran.fetch_add(1);
  });
  std::thread closer([&pool] { pool.Shutdown(); });
  // Give Shutdown a moment to flip shutting_down_, then try to enqueue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const bool accepted = pool.Schedule([&ran] { ran.fetch_add(1); });
  release.store(true);
  closer.join();
  if (accepted) {
    EXPECT_EQ(2, ran.load());  // Raced ahead of Shutdown: it must have run.
  } else {
    EXPECT_EQ(1, ran.load());  // Dropped: it must never run.
  }
  // After shutdown completes, Schedule always refuses.
  EXPECT_FALSE(pool.Schedule([&ran] { ran.fetch_add(1); }));
}

TEST(ThreadPoolTest, ZeroThreadPoolRefusesAfterShutdown) {
  ThreadPool pool(0);
  pool.Shutdown();
  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.Schedule([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(0, ran.load());
}

TEST(ThreadPoolTest, ParallelExecution) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  for (int i = 0; i < 16; i++) {
    pool.Schedule([&] {
      int c = concurrent.fetch_add(1) + 1;
      int prev = max_concurrent.load();
      while (prev < c && !max_concurrent.compare_exchange_weak(prev, c)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GT(max_concurrent.load(), 1);
}

// ---------- Clock ----------

TEST(ClockTest, SimClockAdvancesOnSleep) {
  SimClock clock(100);
  EXPECT_EQ(100u, clock.NowMicros());
  clock.SleepMicros(50);
  EXPECT_EQ(150u, clock.NowMicros());
}

TEST(ClockTest, SystemClockMonotonic) {
  SystemClock* clock = SystemClock::Default();
  uint64_t a = clock->NowMicros();
  uint64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

// ---------- Comparator ----------

TEST(ComparatorTest, ShortestSeparator) {
  const Comparator* cmp = BytewiseComparator::Instance();
  std::string start = "abcdefghij";
  cmp->FindShortestSeparator(&start, "abzzzzzzzz");
  EXPECT_EQ("abd", start);  // 'c'+1 < 'z'
  EXPECT_LT(Slice("abcdefghij").compare(Slice(start)), 0);
  EXPECT_LT(Slice(start).compare(Slice("abzzzzzzzz")), 0);

  // Prefix case: must not shorten.
  start = "ab";
  cmp->FindShortestSeparator(&start, "abc");
  EXPECT_EQ("ab", start);
}

TEST(ComparatorTest, ShortSuccessor) {
  const Comparator* cmp = BytewiseComparator::Instance();
  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_EQ("b", key);

  key = std::string(3, '\xff');
  cmp->FindShortSuccessor(&key);
  EXPECT_EQ(std::string(3, '\xff'), key);
}

}  // namespace
}  // namespace rocksmash
